//! The open-loop serving driver: streaming arrivals, admission control,
//! and online measurement.
//!
//! Closed-loop experiments (everything in `rmb-bench` before this crate)
//! submit a finite batch and run to quiescence — the network's own
//! backpressure throttles the sources, so latency at saturation looks
//! deceptively flat. An *open-loop* driver instead draws arrivals from an
//! external clock that does not care how backed up the network is; when
//! the offered rate crosses the service capacity, queues (and latency
//! percentiles) explode. That hockey stick is the measurement this module
//! exists to produce.
//!
//! Arrivals ride a [`TimingWheel`]: one pending arrival per source node,
//! rescheduled by an [`ArrivalStream`] gap each time it fires, so memory
//! is O(nodes) regardless of run length. Admission control bounds each
//! source's outstanding work — an arrival past the bound is **shed** and
//! counted, never silently dropped: `offered == admitted + shed` and
//! `admitted == delivered + aborted + in_flight` hold exactly at the end
//! of every run ([`ServeReport::loss_accounted`]).

use crate::target::ServeTarget;
use rmb_sim::stats::OnlineStats;
use rmb_sim::{QuantileSketch, SimRng, Tick, TimingWheel};
use rmb_types::{LatencySummary, PerfStats, StatsReport};
use rmb_workloads::ArrivalStream;

/// Admission policy applied to each arrival before submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionMode {
    /// Bound each source's outstanding messages at `depth`. Needs
    /// per-completion polling (the driver decrements the source's count
    /// when its message finishes), so the target must retain completion
    /// records at least one poll interval — use full or windowed log
    /// retention.
    PerSource {
        /// Maximum outstanding messages per source.
        depth: u32,
    },
    /// Bound the *aggregate* in-flight count at `depth × node_count`,
    /// tracked through [`crate::target::TargetTotals`] alone. Works with
    /// counters-only retention (no per-completion records), which is what
    /// lets multi-million-tick soaks run in bounded memory.
    Aggregate {
        /// Maximum in-flight messages per node (aggregate bound is this
        /// times the node count).
        depth: u32,
    },
}

/// How the driver picks a destination for each admitted arrival.
///
/// Destination choice lives in the driver (not the arrival stream)
/// because it is drawn per *admitted* message from the driver's RNG; a
/// policy only changes which node is drawn, never how many RNG values the
/// uniform path consumes — [`Uniform`](DestinationPolicy::Uniform) runs
/// produce bit-identical reports with or without this type in the loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DestinationPolicy {
    /// Uniformly random other node (the classic load-sweep choice, and
    /// what [`serve`] always uses).
    Uniform,
    /// Hot-spot bias: with probability `fraction` the destination is
    /// `node` (unless the source *is* the hot node); otherwise a
    /// uniformly random other node.
    Hotspot {
        /// Serving index of the hot node.
        node: u32,
        /// Probability an arrival is redirected to the hot node
        /// (clamped to `[0, 1]` at draw time).
        fraction: f64,
    },
}

/// Shape of one open-loop run.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Per-node per-tick target arrival rate (passed to the stream; kept
    /// here for the report).
    pub rate: f64,
    /// Ticks to run before statistics start accumulating.
    pub warmup: u64,
    /// Measured ticks after warmup.
    pub duration: u64,
    /// Data flits per message.
    pub flits: u32,
    /// Admission policy.
    pub admission: AdmissionMode,
    /// Driver RNG seed (destination choice and arrival gaps).
    pub seed: u64,
}

impl ServeConfig {
    /// A reasonable sweep-point configuration: per-source admission of
    /// depth 4, 2k warmup, 8-flit messages.
    pub fn sweep(rate: f64, duration: u64, seed: u64) -> Self {
        ServeConfig {
            rate,
            warmup: 2_000,
            duration,
            flits: 8,
            admission: AdmissionMode::PerSource { depth: 4 },
            seed,
        }
    }
}

/// Everything measured over one open-loop run. Implements
/// [`StatsReport`], so experiment emitters treat it exactly like a
/// closed-loop `RunReport`.
///
/// Equality ignores [`perf`](Self::perf): wall-clock measurement is host
/// metadata, and two runs of the same seed must compare equal regardless
/// of how fast the host happened to be (or how many threads a hierarchy
/// target ran on).
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Target topology label.
    pub label: String,
    /// Arrival-process label (`"poisson"`, `"bursty"`).
    pub arrivals: String,
    /// Per-node per-tick offered rate.
    pub rate: f64,
    /// Total ticks simulated (warmup + measured duration).
    pub ticks: u64,
    /// Warmup ticks excluded from latency/utilization statistics.
    pub warmup: u64,
    /// Arrivals generated by the clock.
    pub offered: u64,
    /// Arrivals refused admission (bounded queue full).
    pub shed: u64,
    /// Arrivals submitted to the target.
    pub admitted: u64,
    /// Messages delivered by the end of the run.
    pub delivered: u64,
    /// Messages aborted by the engine.
    pub aborted: u64,
    /// Messages still in flight when the run ended.
    pub in_flight: u64,
    /// Engine-side connection refusals (Nacks / bridge refusals).
    pub refusals: u64,
    /// Mean busy fraction of transport resources over the measured
    /// window.
    pub mean_utilization: f64,
    /// `true` if the engine detected a stall.
    pub stalled: bool,
    /// Latency digest over measured completions (driver sketch, or the
    /// engine's own sketch under counters-only retention).
    pub latency: LatencySummary,
    /// Wall-clock measurement of the run. Excluded from equality.
    pub perf: Option<PerfStats>,
}

impl PartialEq for ServeReport {
    fn eq(&self, other: &Self) -> bool {
        // Everything except `perf`, which is measurement metadata.
        self.label == other.label
            && self.arrivals == other.arrivals
            && self.rate == other.rate
            && self.ticks == other.ticks
            && self.warmup == other.warmup
            && self.offered == other.offered
            && self.shed == other.shed
            && self.admitted == other.admitted
            && self.delivered == other.delivered
            && self.aborted == other.aborted
            && self.in_flight == other.in_flight
            && self.refusals == other.refusals
            && self.mean_utilization == other.mean_utilization
            && self.stalled == other.stalled
            && self.latency == other.latency
    }
}

impl ServeReport {
    /// `true` when every offered arrival is accounted for: shed, still in
    /// flight, delivered or aborted. A failed check means records were
    /// lost silently — treat as a bug.
    pub fn loss_accounted(&self) -> bool {
        self.offered == self.shed + self.admitted
            && self.admitted == self.delivered + self.aborted + self.in_flight
    }

    /// Fraction of offered arrivals shed (0 when nothing was offered).
    pub fn shed_rate(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        self.shed as f64 / self.offered as f64
    }

    /// Delivered messages per tick over the measured window.
    pub fn throughput(&self) -> f64 {
        let window = self.ticks.saturating_sub(self.warmup);
        if window == 0 {
            return 0.0;
        }
        self.delivered as f64 / window as f64
    }
}

impl StatsReport for ServeReport {
    fn ticks(&self) -> u64 {
        self.ticks
    }

    fn delivered_count(&self) -> u64 {
        self.delivered
    }

    fn aborted_count(&self) -> u64 {
        self.aborted
    }

    fn shed_count(&self) -> u64 {
        self.shed
    }

    fn refusal_count(&self) -> u64 {
        self.refusals
    }

    fn mean_utilization(&self) -> Option<f64> {
        Some(self.mean_utilization)
    }

    fn is_stalled(&self) -> bool {
        self.stalled
    }

    fn perf(&self) -> Option<PerfStats> {
        self.perf
    }

    fn latency(&self) -> LatencySummary {
        self.latency
    }
}

/// Runs one open-loop serving experiment against `target`.
///
/// Every node gets an independent arrival clock driven by `arrivals`;
/// each firing either submits a message to a uniformly random other node
/// or, if the admission bound is hit, sheds it. Statistics accumulate
/// after `cfg.warmup` ticks. The run is deterministic in `cfg.seed` —
/// the same seed, stream and target configuration produce a bit-identical
/// [`ServeReport`].
///
/// # Examples
///
/// ```
/// use rmb_core::RmbNetwork;
/// use rmb_serve::{serve, FlatTarget, ServeConfig};
/// use rmb_types::RmbConfig;
/// use rmb_workloads::PoissonStream;
///
/// let net = RmbNetwork::new(RmbConfig::new(8, 2).unwrap());
/// let cfg = ServeConfig::sweep(0.002, 4_000, 7);
/// let report = serve(
///     &mut FlatTarget::new(net),
///     &mut PoissonStream::new(cfg.rate),
///     &cfg,
/// );
/// assert!(report.loss_accounted());
/// assert!(report.delivered > 0);
/// ```
pub fn serve(
    target: &mut dyn ServeTarget,
    arrivals: &mut dyn ArrivalStream,
    cfg: &ServeConfig,
) -> ServeReport {
    serve_with_policy(target, arrivals, cfg, DestinationPolicy::Uniform)
}

/// [`serve`] with an explicit [`DestinationPolicy`]. With
/// [`DestinationPolicy::Uniform`] this is exactly `serve` — same RNG
/// draw sequence, bit-identical report.
pub fn serve_with_policy(
    target: &mut dyn ServeTarget,
    arrivals: &mut dyn ArrivalStream,
    cfg: &ServeConfig,
    policy: DestinationPolicy,
) -> ServeReport {
    let start = std::time::Instant::now();
    let n = target.node_count();
    assert!(n >= 2, "need at least two serving nodes");
    let mut rng = SimRng::seed(cfg.seed);
    let mut wheel: TimingWheel<u32> = TimingWheel::new();
    for node in 0..n {
        let gap = arrivals.next_gap(node, &mut rng);
        wheel.schedule(Tick::new(gap.saturating_sub(1)), node);
    }

    let per_source = matches!(cfg.admission, AdmissionMode::PerSource { .. });
    let mut outstanding = vec![0u32; if per_source { n as usize } else { 0 }];
    let total_ticks = cfg.warmup + cfg.duration;
    let mut offered = 0u64;
    let mut shed = 0u64;
    let mut sketch = QuantileSketch::latency_defaults();
    let mut util = OnlineStats::default();
    let mut completions = Vec::new();

    for t in 0..total_ticks {
        debug_assert_eq!(target.now(), t);
        while let Some((_, node)) = wheel.pop_due(Tick::new(t)) {
            offered += 1;
            let admit = match cfg.admission {
                AdmissionMode::PerSource { depth } => outstanding[node as usize] < depth,
                AdmissionMode::Aggregate { depth } => {
                    target.totals().in_flight() < u64::from(depth) * u64::from(n)
                }
            };
            if admit {
                let uniform_other = |rng: &mut SimRng| {
                    let r = rng.index((n - 1) as usize).expect("n >= 2") as u32;
                    if r >= node {
                        r + 1
                    } else {
                        r
                    }
                };
                let dest = match policy {
                    DestinationPolicy::Uniform => uniform_other(&mut rng),
                    DestinationPolicy::Hotspot { node: hot, fraction } => {
                        if node != hot && rng.chance(fraction.clamp(0.0, 1.0)) {
                            hot
                        } else {
                            uniform_other(&mut rng)
                        }
                    }
                };
                target.submit(node, dest, cfg.flits);
                if per_source {
                    outstanding[node as usize] += 1;
                }
            } else {
                shed += 1;
            }
            let gap = arrivals.next_gap(node, &mut rng);
            wheel.schedule(Tick::new(t + gap), node);
        }

        target.tick();

        completions.clear();
        target.poll(&mut completions);
        for c in &completions {
            if per_source {
                outstanding[c.source as usize] -= 1;
            }
            if t >= cfg.warmup && !c.aborted {
                sketch.record(c.latency);
            }
        }
        if t >= cfg.warmup {
            util.record(target.utilization());
        }
        if target.is_stalled() {
            break;
        }
    }

    let totals = target.totals();
    let latency = if sketch.count() > 0 {
        LatencySummary {
            count: sketch.count(),
            mean: sketch.mean(),
            p50: sketch.quantile(0.5),
            p99: sketch.quantile(0.99),
            p999: sketch.quantile(0.999),
            max: sketch.max(),
        }
    } else {
        // Counters-only targets surface no completions to the driver;
        // fall back to the engine's own sketch when it keeps one.
        LatencySummary {
            count: totals.delivered,
            mean: 0.0,
            p50: target.latency_quantile(0.5),
            p99: target.latency_quantile(0.99),
            p999: target.latency_quantile(0.999),
            max: None,
        }
    };

    ServeReport {
        label: target.label(),
        arrivals: arrivals.label().to_string(),
        rate: cfg.rate,
        ticks: target.now(),
        warmup: cfg.warmup,
        offered,
        shed,
        admitted: offered - shed,
        delivered: totals.delivered,
        aborted: totals.aborted,
        in_flight: totals.in_flight(),
        refusals: target.refusals(),
        mean_utilization: util.mean(),
        stalled: target.is_stalled(),
        latency,
        perf: Some(PerfStats::measure(
            target.now(),
            start.elapsed(),
            target.threads(),
        )),
    }
}
