//! Open-loop serving mode for the RMB reproduction.
//!
//! Every experiment before this crate was *closed-loop*: a finite batch
//! of messages runs to quiescence, so the network's own backpressure
//! paces the sources and saturation never shows its real cost. This crate
//! adds the serving view — arrivals stream in from an external clock at a
//! configured rate whether or not the network is keeping up — which is
//! how interconnects are actually characterised: offered load on the
//! x-axis, latency percentiles on the y-axis, and the hockey stick where
//! the two meet.
//!
//! Three pieces:
//!
//! * [`ServeTarget`] — the engine abstraction: submit one message now,
//!   advance a tick, poll completions, read gauges. Adapters wrap the
//!   flat ring ([`FlatTarget`]), the bridged hierarchy ([`HierTarget`])
//!   and a wormhole torus baseline ([`WormholeTarget`]).
//! * [`serve`] — the driver: per-node arrival clocks on a timing wheel,
//!   admission control with explicit shedding
//!   ([`AdmissionMode::PerSource`] for sweeps,
//!   [`AdmissionMode::Aggregate`] for counters-only soaks), online
//!   p50/p99/p999 via a streaming quantile sketch.
//! * [`ServeReport`] — the result, implementing
//!   [`rmb_types::StatsReport`] so emitters treat open- and closed-loop
//!   runs through one schema. [`ServeReport::loss_accounted`] certifies
//!   that every offered arrival is explicitly shed, in flight, delivered
//!   or aborted — nothing is ever lost silently, at any retention
//!   setting.
//!
//! # Examples
//!
//! ```
//! use rmb_core::RmbNetwork;
//! use rmb_serve::{serve, FlatTarget, ServeConfig};
//! use rmb_types::{RmbConfig, StatsReport};
//! use rmb_workloads::PoissonStream;
//!
//! let net = RmbNetwork::new(RmbConfig::new(16, 4).unwrap());
//! let cfg = ServeConfig::sweep(0.003, 6_000, 42);
//! let report = serve(
//!     &mut FlatTarget::new(net),
//!     &mut PoissonStream::new(cfg.rate),
//!     &cfg,
//! );
//! assert!(report.loss_accounted());
//! assert!(report.latency.p99.unwrap() >= report.latency.p50.unwrap());
//! let row = report.to_json_object(); // canonical cross-engine schema
//! assert!(row.contains("\"shed\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod driver;
mod target;

pub use driver::{
    serve, serve_with_policy, AdmissionMode, DestinationPolicy, ServeConfig, ServeReport,
};
pub use target::{Completion, FlatTarget, HierTarget, ServeTarget, TargetTotals, WormholeTarget};
