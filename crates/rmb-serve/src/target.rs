//! The [`ServeTarget`] abstraction and its three adapters.
//!
//! A serving target is any network engine that can accept one message at
//! a time *while running* and report completions incrementally. The
//! open-loop driver in [`crate::driver`] is written against this trait
//! alone, which is what lets one experiment sweep the flat RMB ring, the
//! bridged hierarchy and a wormhole torus over the same offered-load axis.

use rmb_baselines::{Graph, KAryNCube, Network, Vertex, WormholeEngine};
use rmb_core::{LogRetention, RmbNetwork};
use rmb_hier::HierNetwork;
use rmb_types::{HierMessageSpec, MessageSpec, NodeAddr, NodeId};

/// One finished message, as surfaced by [`ServeTarget::poll`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Serving-node index of the source (dense `0..node_count`).
    pub source: u32,
    /// Ticks from submission to the terminal event.
    pub latency: u64,
    /// Tick of the terminal event.
    pub finished_at: u64,
    /// `true` when the engine gave up on the message (retry budget
    /// exhausted) instead of delivering it.
    pub aborted: bool,
}

/// Lifetime counters of a target, independent of any log retention the
/// underlying engine applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TargetTotals {
    /// Messages accepted by [`ServeTarget::submit`].
    pub submitted: u64,
    /// Messages delivered in full.
    pub delivered: u64,
    /// Messages aborted by the engine.
    pub aborted: u64,
}

impl TargetTotals {
    /// Messages submitted but not yet terminal.
    pub const fn in_flight(&self) -> u64 {
        self.submitted - self.delivered - self.aborted
    }
}

/// A network engine the open-loop driver can stream load through.
///
/// Node indices are dense `0..node_count()` serving positions; adapters
/// translate them to whatever addressing the engine uses (the hierarchy
/// adapter, for instance, skips bridge positions). `submit` always
/// injects at the engine's current tick — admission control happens in
/// the driver *before* submission, so an accepted message is never
/// silently dropped by the target.
pub trait ServeTarget {
    /// Human-readable topology label for reports.
    fn label(&self) -> String;

    /// Number of serving positions (valid `submit` indices).
    fn node_count(&self) -> u32;

    /// The engine's current tick.
    fn now(&self) -> u64;

    /// Injects a `flits`-flit message from `source` to `dest` at the
    /// current tick. Both are serving-node indices and must differ.
    fn submit(&mut self, source: u32, dest: u32, flits: u32);

    /// Advances the engine by one tick.
    fn tick(&mut self);

    /// Appends completions since the previous poll to `out`. Every
    /// terminal event is reported exactly once; adapters panic rather
    /// than skip records if the engine's retention window was outrun.
    fn poll(&mut self, out: &mut Vec<Completion>);

    /// Instantaneous fraction of busy transport resources.
    fn utilization(&self) -> f64;

    /// Lifetime counters (submitted / delivered / aborted).
    fn totals(&self) -> TargetTotals;

    /// Connection refusals issued inside the engine so far (Nacks,
    /// bridge refusals), when tracked.
    fn refusals(&self) -> u64 {
        0
    }

    /// Engine-side latency percentile estimate, when the engine keeps an
    /// online sketch of its own (used by counters-only soaks where the
    /// driver cannot see individual completions).
    fn latency_quantile(&self, _phi: f64) -> Option<u64> {
        None
    }

    /// `true` once the engine has detected a routing stall / deadlock.
    fn is_stalled(&self) -> bool {
        false
    }

    /// Worker threads the engine advances on (1 unless the target wraps a
    /// sharded engine). Reported in [`crate::ServeReport`]'s perf record.
    fn threads(&self) -> usize {
        1
    }
}

/// [`ServeTarget`] over the flat RMB ring ([`RmbNetwork`]).
///
/// Works under every [`rmb_core::LogRetention`] policy: completions are
/// drained through the network's absolute-sequence cursors, so a
/// `Window` big enough for one tick's churn loses nothing (and panics
/// loudly if outrun), while `CountersOnly` reports totals and leaves
/// per-completion polling empty — pair it with the network's built-in
/// latency sketch for percentiles.
#[derive(Debug)]
pub struct FlatTarget {
    net: RmbNetwork,
    submitted: u64,
    dcur: usize,
    acur: usize,
}

impl FlatTarget {
    /// Wraps a (typically freshly built) network.
    pub fn new(net: RmbNetwork) -> Self {
        FlatTarget {
            net,
            submitted: 0,
            dcur: 0,
            acur: 0,
        }
    }

    /// The wrapped network.
    pub fn network(&self) -> &RmbNetwork {
        &self.net
    }
}

impl ServeTarget for FlatTarget {
    fn label(&self) -> String {
        format!(
            "rmb-flat(n={},k={})",
            self.net.ring().get(),
            self.net.config().buses()
        )
    }

    fn node_count(&self) -> u32 {
        self.net.ring().get()
    }

    fn now(&self) -> u64 {
        self.net.now().get()
    }

    fn submit(&mut self, source: u32, dest: u32, flits: u32) {
        let spec = MessageSpec::new(NodeId::new(source), NodeId::new(dest), flits)
            .at(self.net.now().get());
        self.net.submit(spec).expect("driver submits valid messages");
        self.submitted += 1;
    }

    fn tick(&mut self) {
        self.net.tick();
    }

    fn poll(&mut self, out: &mut Vec<Completion>) {
        // Counters-only retention keeps no records by contract, so there
        // is nothing to surface (and nothing was lost: totals() still
        // sees every completion). Any *other* policy that drops records
        // before we read them panics inside `delivered_since` — outrun
        // windows fail loudly, never silently.
        if self.net.options().log_retention == LogRetention::CountersOnly {
            return;
        }
        for d in self.net.delivered_since(self.dcur) {
            out.push(Completion {
                source: d.spec.source.index(),
                latency: d.latency(),
                finished_at: d.delivered_at,
                aborted: false,
            });
        }
        self.dcur = self.net.delivered_total() as usize;
        for a in self.net.aborted_since(self.acur) {
            out.push(Completion {
                source: a.spec.source.index(),
                latency: a.aborted_at.saturating_sub(a.spec.inject_at),
                finished_at: a.aborted_at,
                aborted: true,
            });
        }
        self.acur = self.net.aborted_records() as usize;
    }

    fn utilization(&self) -> f64 {
        self.net.utilization()
    }

    fn totals(&self) -> TargetTotals {
        TargetTotals {
            submitted: self.submitted,
            delivered: self.net.delivered_total(),
            aborted: self.net.aborted_records(),
        }
    }

    fn refusals(&self) -> u64 {
        self.net.report().refusals
    }

    fn latency_quantile(&self, phi: f64) -> Option<u64> {
        self.net.latency_quantile(phi)
    }
}

/// [`ServeTarget`] over the bridged multi-ring hierarchy
/// ([`HierNetwork`]).
///
/// Serving index `u` maps to compute position `1 + u % (m-1)` on ring
/// `u / (m-1)`, where `m` is nodes per ring — position 0 of every ring
/// is its bridge and carries no PE.
#[derive(Debug)]
pub struct HierTarget {
    net: HierNetwork,
    submitted: u64,
    dcur: usize,
    acur: usize,
}

impl HierTarget {
    /// Wraps a (typically freshly built) hierarchy.
    pub fn new(net: HierNetwork) -> Self {
        HierTarget {
            net,
            submitted: 0,
            dcur: 0,
            acur: 0,
        }
    }

    /// The wrapped hierarchy.
    pub fn network(&self) -> &HierNetwork {
        &self.net
    }

    fn addr(&self, u: u32) -> NodeAddr {
        let per_ring = self.net.config().local().nodes().get() - 1;
        NodeAddr::new(u / per_ring, NodeId::new(1 + u % per_ring))
    }

    fn index_of(&self, addr: NodeAddr) -> u32 {
        let per_ring = self.net.config().local().nodes().get() - 1;
        addr.ring * per_ring + (addr.node.index() - 1)
    }
}

impl ServeTarget for HierTarget {
    fn label(&self) -> String {
        let cfg = self.net.config();
        format!(
            "rmb-hier(rings={},m={},k={})",
            cfg.rings(),
            cfg.local().nodes().get(),
            cfg.local().buses()
        )
    }

    fn node_count(&self) -> u32 {
        self.net.config().compute_nodes()
    }

    fn now(&self) -> u64 {
        self.net.now()
    }

    fn submit(&mut self, source: u32, dest: u32, flits: u32) {
        let spec = HierMessageSpec::new(self.addr(source), self.addr(dest), flits)
            .at(self.net.now());
        self.net.submit(spec).expect("driver submits valid messages");
        self.submitted += 1;
    }

    fn tick(&mut self) {
        self.net.tick();
    }

    fn poll(&mut self, out: &mut Vec<Completion>) {
        let delivered = self.net.delivered_log();
        for d in &delivered[self.dcur..] {
            out.push(Completion {
                source: self.index_of(d.spec.source),
                latency: d.delivered_at.saturating_sub(d.spec.inject_at),
                finished_at: d.delivered_at,
                aborted: false,
            });
        }
        self.dcur = delivered.len();
        let aborted = self.net.aborted_log();
        for a in &aborted[self.acur..] {
            out.push(Completion {
                source: self.index_of(a.spec.source),
                latency: a.aborted_at.saturating_sub(a.spec.inject_at),
                finished_at: a.aborted_at,
                aborted: true,
            });
        }
        self.acur = aborted.len();
    }

    fn utilization(&self) -> f64 {
        let rings = self.net.config().rings();
        let mut acc = self.net.global_ring().utilization();
        for r in 0..rings {
            acc += self.net.local(r).utilization();
        }
        acc / f64::from(rings + 1)
    }

    fn totals(&self) -> TargetTotals {
        TargetTotals {
            submitted: self.submitted,
            delivered: self.net.delivered_log().len() as u64,
            aborted: self.net.aborted_log().len() as u64,
        }
    }

    fn refusals(&self) -> u64 {
        let r = self.net.report();
        r.bridge_refusals + r.leg_refusals
    }

    fn threads(&self) -> usize {
        self.net.exec_mode().threads()
    }
}

/// [`ServeTarget`] over a wormhole-routed k-ary n-cube (torus), the
/// conventional point-to-point baseline.
///
/// Uses the exact dimension-ordered dateline-VC routing of
/// [`KAryNCube::route_messages`], but drives the flit engine
/// incrementally so arrivals can stream in. Wormhole switching never
/// aborts — a blocked worm waits — so `aborted` is always 0 and
/// saturation shows up as latency growth plus driver-side shedding.
pub struct WormholeTarget {
    engine: WormholeEngine<'static>,
    label: String,
    nodes: u32,
    submitted: u64,
    dcur: usize,
}

impl std::fmt::Debug for WormholeTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WormholeTarget")
            .field("label", &self.label)
            .field("nodes", &self.nodes)
            .field("submitted", &self.submitted)
            .finish_non_exhaustive()
    }
}

impl WormholeTarget {
    /// Builds a torus target with `radix^dims` nodes.
    pub fn torus(radix: u32, dims: u32) -> Self {
        let torus = KAryNCube::new(radix, dims);
        let label = torus.label();
        let nodes = torus.node_count();
        let graph = torus.graph().clone();
        let engine = WormholeEngine::new(
            graph,
            move |_g: &Graph, at: Vertex, dst: Vertex, salt: u64| torus.candidates(at, dst, salt),
            |n| n as Vertex,
        );
        WormholeTarget {
            engine,
            label,
            nodes,
            submitted: 0,
            dcur: 0,
        }
    }
}

impl ServeTarget for WormholeTarget {
    fn label(&self) -> String {
        self.label.clone()
    }

    fn node_count(&self) -> u32 {
        self.nodes
    }

    fn now(&self) -> u64 {
        self.engine.now()
    }

    fn submit(&mut self, source: u32, dest: u32, flits: u32) {
        let spec =
            MessageSpec::new(NodeId::new(source), NodeId::new(dest), flits).at(self.engine.now());
        self.engine.submit(spec);
        self.submitted += 1;
    }

    fn tick(&mut self) {
        self.engine.tick();
    }

    fn poll(&mut self, out: &mut Vec<Completion>) {
        for d in self.engine.delivered_since(self.dcur) {
            out.push(Completion {
                source: d.spec.source.index(),
                latency: d.latency(),
                finished_at: d.delivered_at,
                aborted: false,
            });
        }
        self.dcur = self.engine.delivered().len();
    }

    fn utilization(&self) -> f64 {
        self.engine.busy_channels() as f64 / self.engine.channel_count().max(1) as f64
    }

    fn totals(&self) -> TargetTotals {
        TargetTotals {
            submitted: self.submitted,
            delivered: self.engine.delivered().len() as u64,
            aborted: 0,
        }
    }

    fn is_stalled(&self) -> bool {
        self.engine.is_stalled()
    }
}
