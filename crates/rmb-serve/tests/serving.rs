//! Integration tests for the open-loop serving driver: determinism,
//! admission shedding, loss accounting across all three targets, and the
//! counters-only soak path.

use rmb_core::{LogRetention, RmbNetwork, SchedulerMode};
use rmb_hier::HierNetwork;
use rmb_serve::{
    serve, AdmissionMode, FlatTarget, HierTarget, ServeConfig, ServeReport, ServeTarget,
    WormholeTarget,
};
use rmb_types::{HierConfig, RmbConfig, StatsReport};
use rmb_workloads::{BurstyStream, PoissonStream};

fn flat(n: u32, k: u16, scheduler: SchedulerMode, retention: LogRetention) -> FlatTarget {
    let cfg = RmbConfig::builder(n, k)
        .head_timeout(16 * u64::from(n))
        .retry_backoff(u64::from(n))
        .build()
        .unwrap();
    FlatTarget::new(
        RmbNetwork::builder(cfg)
            .scheduler(scheduler)
            .log_retention(retention)
            .latency_sketch(matches!(retention, LogRetention::CountersOnly))
            .build(),
    )
}

fn run_flat(scheduler: SchedulerMode, rate: f64) -> ServeReport {
    let mut target = flat(16, 4, scheduler, LogRetention::Full);
    let cfg = ServeConfig::sweep(rate, 6_000, 42);
    serve(&mut target, &mut PoissonStream::new(rate), &cfg)
}

/// The report minus its wall-clock perf record: byte-identity claims are
/// about simulation results; perf is host measurement metadata and the
/// one field allowed to differ between two otherwise identical runs.
fn untimed(r: &ServeReport) -> ServeReport {
    ServeReport {
        perf: None,
        ..r.clone()
    }
}

#[test]
fn same_seed_same_report() {
    let a = run_flat(SchedulerMode::EventDriven, 0.004);
    let b = run_flat(SchedulerMode::EventDriven, 0.004);
    assert_eq!(a, b);
    assert_eq!(untimed(&a).to_json_object(), untimed(&b).to_json_object());
    // Timed runs record the wall clock (single-threaded targets: 1).
    assert_eq!(a.perf.expect("serve times itself").threads, 1);
}

#[test]
fn scheduler_modes_agree_byte_for_byte() {
    // The event-driven scheduler is an optimisation, not a semantic
    // change; an identical open-loop run must produce an identical
    // report under both modes.
    for rate in [0.002, 0.01] {
        let ev = run_flat(SchedulerMode::EventDriven, rate);
        let dense = run_flat(SchedulerMode::DenseSweep, rate);
        assert_eq!(ev, dense, "rate {rate}");
        assert_eq!(untimed(&ev).to_json_object(), untimed(&dense).to_json_object());
    }
}

#[test]
fn light_load_sheds_nothing_and_accounts_everything() {
    let r = run_flat(SchedulerMode::EventDriven, 0.001);
    assert!(r.loss_accounted(), "{r:?}");
    assert_eq!(r.shed, 0, "light load must not shed: {r:?}");
    assert!(r.delivered > 0);
    assert!(!r.stalled);
    let lat = r.latency;
    assert!(lat.p50.unwrap() <= lat.p99.unwrap());
    assert!(lat.p99.unwrap() <= lat.max.unwrap());
}

#[test]
fn overload_sheds_explicitly() {
    // A 16-node single-bus ring cannot serve 0.2 arrivals/node/tick;
    // admission control must shed rather than queue without bound.
    let mut target = flat(16, 1, SchedulerMode::EventDriven, LogRetention::Full);
    let cfg = ServeConfig::sweep(0.2, 4_000, 7);
    let r = serve(&mut target, &mut PoissonStream::new(0.2), &cfg);
    assert!(r.loss_accounted(), "{r:?}");
    assert!(r.shed > 0, "overload must shed: {r:?}");
    assert!(r.shed_rate() > 0.3, "shed rate {}", r.shed_rate());
    // Outstanding work stays bounded by the admission depth.
    assert!(r.in_flight <= 4 * 16, "in_flight {}", r.in_flight);
}

#[test]
fn latency_grows_with_offered_load() {
    let low = run_flat(SchedulerMode::EventDriven, 0.001);
    let high = run_flat(SchedulerMode::EventDriven, 0.02);
    assert!(
        high.latency.p99.unwrap() > low.latency.p99.unwrap(),
        "p99 must climb with load: low {:?}, high {:?}",
        low.latency,
        high.latency
    );
    assert!(high.mean_utilization > low.mean_utilization);
}

#[test]
fn bursty_arrivals_shed_more_than_poisson_at_equal_rate() {
    let rate = 0.012;
    let run = |bursty: bool| {
        let mut target = flat(16, 2, SchedulerMode::EventDriven, LogRetention::Full);
        let cfg = ServeConfig::sweep(rate, 8_000, 11);
        if bursty {
            serve(&mut target, &mut BurstyStream::new(rate, 8), &cfg)
        } else {
            serve(&mut target, &mut PoissonStream::new(rate), &cfg)
        }
    };
    let p = run(false);
    let b = run(true);
    assert!(p.loss_accounted() && b.loss_accounted());
    assert!(
        b.shed_rate() >= p.shed_rate(),
        "bursty {} vs poisson {}",
        b.shed_rate(),
        p.shed_rate()
    );
}

#[test]
fn counters_only_soak_stays_bounded_and_loses_nothing() {
    // The soak path: aggregate admission + counters-only retention. The
    // delivered log must stay empty (bounded memory) while percentiles
    // come from the engine's own sketch and accounting stays exact.
    let mut target = flat(16, 4, SchedulerMode::EventDriven, LogRetention::CountersOnly);
    let cfg = ServeConfig {
        rate: 0.004,
        warmup: 1_000,
        duration: 50_000,
        flits: 8,
        admission: AdmissionMode::Aggregate { depth: 4 },
        seed: 3,
    };
    let r = serve(&mut target, &mut PoissonStream::new(cfg.rate), &cfg);
    assert!(r.loss_accounted(), "{r:?}");
    assert!(r.delivered > 1_000);
    assert_eq!(
        target.network().delivered_log().len(),
        0,
        "counters-only must retain no records"
    );
    assert!(
        r.latency.p50.is_some() && r.latency.p999.is_some(),
        "engine sketch must supply percentiles: {:?}",
        r.latency
    );
}

#[test]
fn windowed_retention_feeds_per_source_admission() {
    // Window(n) keeps enough records for the driver's per-tick poll; the
    // run must behave identically to Full retention.
    let run = |retention| {
        let mut target = flat(16, 4, SchedulerMode::EventDriven, retention);
        let cfg = ServeConfig::sweep(0.006, 5_000, 19);
        serve(&mut target, &mut PoissonStream::new(0.006), &cfg)
    };
    let full = run(LogRetention::Full);
    let windowed = run(LogRetention::Window(64));
    assert_eq!(full, windowed);
}

#[test]
fn hier_target_serves_and_accounts() {
    let cfg = HierConfig::builder(4, 5, 2)
        .head_timeout(80)
        .retry_backoff(5)
        .build()
        .unwrap();
    let mut target = HierTarget::new(HierNetwork::new(cfg));
    assert_eq!(target.node_count(), 16); // 4 rings x 4 compute nodes
    let cfg = ServeConfig::sweep(0.002, 6_000, 21);
    let r = serve(&mut target, &mut PoissonStream::new(0.002), &cfg);
    assert!(r.loss_accounted(), "{r:?}");
    assert!(r.delivered > 0, "{r:?}");
    assert!(r.label.starts_with("rmb-hier"));
    assert!(r.latency.p50.is_some());
}

#[test]
fn sharded_hier_target_serves_identically_to_serial() {
    // Open-loop serving over the hierarchy must be execution-mode
    // invariant too: the driver's arrival clock, admission decisions and
    // sketches all key off simulation state, which the sharded engine
    // reproduces byte for byte.
    use rmb_types::ExecMode;
    let run = |mode: ExecMode| {
        let cfg = HierConfig::builder(4, 5, 2)
            .head_timeout(80)
            .retry_backoff(5)
            .build()
            .unwrap();
        let net = HierNetwork::builder(cfg).exec_mode(mode).build();
        let mut target = HierTarget::new(net);
        let cfg = ServeConfig::sweep(0.003, 6_000, 33);
        serve(&mut target, &mut PoissonStream::new(0.003), &cfg)
    };
    let serial = run(ExecMode::Serial);
    for threads in [2, 4] {
        let sharded = run(ExecMode::Sharded(threads));
        assert_eq!(serial, sharded, "sharded({threads})");
        assert_eq!(
            untimed(&serial).to_json_object(),
            untimed(&sharded).to_json_object(),
            "sharded({threads}) JSON row"
        );
        // The perf record names the pool size the target ran on.
        assert_eq!(sharded.perf.unwrap().threads as usize, threads);
    }
    assert!(serial.delivered > 0 && serial.loss_accounted());
}

#[test]
fn wormhole_target_serves_and_accounts() {
    let mut target = WormholeTarget::torus(4, 2); // 16 nodes
    assert_eq!(target.node_count(), 16);
    let cfg = ServeConfig::sweep(0.002, 6_000, 23);
    let r = serve(&mut target, &mut PoissonStream::new(0.002), &cfg);
    assert!(r.loss_accounted(), "{r:?}");
    assert!(r.delivered > 0, "{r:?}");
    assert_eq!(r.aborted, 0, "wormhole switching never aborts");
    assert!(r.label.starts_with("torus"));
    assert!(!r.stalled);
}

#[test]
fn stats_report_schema_is_shared_across_engines() {
    use rmb_types::json::Value;
    let open = run_flat(SchedulerMode::EventDriven, 0.004);
    let closed = {
        let mut net = RmbNetwork::new(RmbConfig::new(16, 4).unwrap());
        net.submit_all(
            (0..8)
                .map(|i| {
                    rmb_types::MessageSpec::new(
                        rmb_types::NodeId::new(i),
                        rmb_types::NodeId::new((i + 5) % 16),
                        8,
                    )
                })
                .collect::<Vec<_>>(),
        )
        .unwrap();
        net.run_to_quiescence(100_000)
    };
    let keys = |s: &str| {
        let v = Value::parse(s).expect("valid json");
        match v {
            Value::Obj(fields) => fields.into_iter().map(|(k, _)| k).collect::<Vec<_>>(),
            _ => panic!("expected object"),
        }
    };
    assert_eq!(
        keys(&open.to_json_object()),
        keys(&closed.to_json_object()),
        "open- and closed-loop reports must share one schema"
    );
}
