//! Fixed-size circular bitmaps for bit-parallel occupancy queries.
//!
//! [`BitRing`] packs one bit per position of a ring (e.g. one bit per hop
//! of the RMB bus array) into `u64` words, so "is any position in this
//! clockwise arc set?" becomes a handful of masked word tests instead of a
//! per-position walk. Arcs may cross the ring's wrap point (position
//! `len - 1` back to 0), which the range queries split into two linear
//! spans internally.
//!
//! # Examples
//!
//! ```
//! use rmb_sim::BitRing;
//!
//! let mut ring = BitRing::new(100);
//! ring.set(99);
//! assert!(ring.any_in_arc(90, 20)); // arc 90..=9 wraps and hits bit 99
//! assert_eq!(ring.count_in_arc(90, 20), 1);
//! ring.clear(99);
//! assert!(!ring.any_in_arc(0, 100));
//! ```

/// `true` if any bit of the clockwise arc `[start, start + count)` is set
/// in a ring of `len` positions packed 64 per word into `words`.
///
/// The slice-level twin of [`BitRing::any_in_arc`], for callers that pack
/// several rings into one contiguous word array (e.g. per-bus occupancy
/// lanes) and hand in the `len.div_ceil(64)`-word window of one ring.
/// Arc lengths are clamped to `len`; a zero-length arc is always clear.
///
/// # Panics
///
/// Panics if `start >= len` on a non-empty query, or if `words` is shorter
/// than `len.div_ceil(64)`.
#[inline]
#[must_use]
pub fn arc_any(words: &[u64], len: usize, start: usize, count: usize) -> bool {
    let count = count.min(len);
    if count == 0 {
        return false;
    }
    assert!(start < len, "start {start} out of range 0..{len}");
    let tail = len - start;
    if count <= tail {
        span_any(words, start, start + count)
    } else {
        span_any(words, start, len) || span_any(words, 0, count - tail)
    }
}

/// Any set bit in the linear span `[lo, hi)`, `hi > lo`, no wrap.
#[inline]
fn span_any(words: &[u64], lo: usize, hi: usize) -> bool {
    let (fw, fb) = (lo / 64, lo % 64);
    let lw = (hi - 1) / 64;
    let first_mask = !0u64 << fb;
    let last_mask = !0u64 >> (63 - (hi - 1) % 64);
    if fw == lw {
        return words[fw] & first_mask & last_mask != 0;
    }
    if words[fw] & first_mask != 0 {
        return true;
    }
    if words[fw + 1..lw].iter().any(|&w| w != 0) {
        return true;
    }
    words[lw] & last_mask != 0
}

/// A fixed-length bitmap over ring positions `0..len`, packed 64 per word.
///
/// All range queries take a start position and an arc *length* (clockwise),
/// so wrap-around arcs need no special casing by the caller. Arc lengths
/// are clamped to the ring length: an arc of `len` covers everything.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BitRing {
    words: Vec<u64>,
    len: usize,
}

impl BitRing {
    /// An all-zero ring of `len` positions.
    #[must_use]
    pub fn new(len: usize) -> Self {
        BitRing {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of positions.
    #[must_use]
    pub const fn len(&self) -> usize {
        self.len
    }

    /// `true` when the ring has no positions.
    #[must_use]
    pub const fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bit at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    #[must_use]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "position {i} out of range 0..{}", self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Sets the bit at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "position {i} out of range 0..{}", self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clears the bit at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        assert!(i < self.len, "position {i} out of range 0..{}", self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Writes the bit at position `i`.
    #[inline]
    pub fn assign(&mut self, i: usize, value: bool) {
        if value {
            self.set(i);
        } else {
            self.clear(i);
        }
    }

    /// Clears every bit.
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Total number of set bits.
    #[must_use]
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// `true` if any bit in the clockwise arc of `count` positions
    /// starting at `start` is set. Arcs longer than the ring are clamped;
    /// a zero-length arc is always clear.
    ///
    /// # Panics
    ///
    /// Panics if `start >= len` on a non-empty query.
    #[inline]
    #[must_use]
    pub fn any_in_arc(&self, start: usize, count: usize) -> bool {
        arc_any(&self.words, self.len, start, count)
    }

    /// Number of set bits in the clockwise arc of `count` positions
    /// starting at `start` (a masked-range popcount). Arcs longer than the
    /// ring are clamped.
    ///
    /// # Panics
    ///
    /// Panics if `start >= len` on a non-empty query.
    #[must_use]
    pub fn count_in_arc(&self, start: usize, count: usize) -> u32 {
        let count = count.min(self.len);
        if count == 0 {
            return 0;
        }
        assert!(start < self.len, "start {start} out of range 0..{}", self.len);
        let tail = self.len - start;
        if count <= tail {
            self.span_count(start, start + count)
        } else {
            self.span_count(start, self.len) + self.span_count(0, count - tail)
        }
    }

    /// Position of the first set bit in the clockwise arc (found with a
    /// masked trailing-zeros scan), or `None` if the arc is clear. The
    /// returned position is absolute, not arc-relative.
    #[must_use]
    pub fn first_set_in_arc(&self, start: usize, count: usize) -> Option<usize> {
        let count = count.min(self.len);
        if count == 0 {
            return None;
        }
        assert!(start < self.len, "start {start} out of range 0..{}", self.len);
        let tail = self.len - start;
        if count <= tail {
            self.span_first(start, start + count)
        } else {
            self.span_first(start, self.len)
                .or_else(|| self.span_first(0, count - tail))
        }
    }

    /// Popcount of the linear span `[lo, hi)`, `hi > lo`, no wrap.
    fn span_count(&self, lo: usize, hi: usize) -> u32 {
        let (fw, fb) = (lo / 64, lo % 64);
        let lw = (hi - 1) / 64;
        let first_mask = !0u64 << fb;
        let last_mask = !0u64 >> (63 - (hi - 1) % 64);
        if fw == lw {
            return (self.words[fw] & first_mask & last_mask).count_ones();
        }
        (self.words[fw] & first_mask).count_ones()
            + self.words[fw + 1..lw]
                .iter()
                .map(|w| w.count_ones())
                .sum::<u32>()
            + (self.words[lw] & last_mask).count_ones()
    }

    /// First set bit of the linear span `[lo, hi)`, `hi > lo`, no wrap.
    fn span_first(&self, lo: usize, hi: usize) -> Option<usize> {
        let (fw, fb) = (lo / 64, lo % 64);
        let lw = (hi - 1) / 64;
        let first_mask = !0u64 << fb;
        let last_mask = !0u64 >> (63 - (hi - 1) % 64);
        for w in fw..=lw {
            let mut word = self.words[w];
            if w == fw {
                word &= first_mask;
            }
            if w == lw {
                word &= last_mask;
            }
            if word != 0 {
                return Some(w * 64 + word.trailing_zeros() as usize);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::collection::vec;
    use proptest::prelude::*;

    /// Naive reference: bools in a Vec, arcs walked position by position.
    fn naive_arc(bits: &[bool], start: usize, count: usize) -> (bool, u32, Option<usize>) {
        let n = bits.len();
        let count = count.min(n);
        let mut any = false;
        let mut total = 0;
        let mut first = None;
        for j in 0..count {
            let i = (start + j) % n;
            if bits[i] {
                any = true;
                total += 1;
                if first.is_none() {
                    first = Some(i);
                }
            }
        }
        (any, total, first)
    }

    #[test]
    fn set_get_clear_roundtrip() {
        let mut r = BitRing::new(130);
        assert!(!r.get(129));
        r.set(129);
        r.set(0);
        r.set(64);
        assert!(r.get(129) && r.get(0) && r.get(64));
        assert_eq!(r.count_ones(), 3);
        r.clear(64);
        assert!(!r.get(64));
        r.assign(64, true);
        assert!(r.get(64));
        r.clear_all();
        assert_eq!(r.count_ones(), 0);
    }

    #[test]
    fn arcs_cross_word_boundaries() {
        let mut r = BitRing::new(200);
        r.set(63);
        r.set(64);
        r.set(128);
        assert!(r.any_in_arc(60, 5));
        assert_eq!(r.count_in_arc(60, 5), 2);
        assert_eq!(r.count_in_arc(0, 200), 3);
        assert_eq!(r.first_set_in_arc(64, 100), Some(64));
        assert_eq!(r.first_set_in_arc(65, 100), Some(128));
        assert!(!r.any_in_arc(129, 71));
    }

    #[test]
    fn wrapping_arcs_cover_the_cut() {
        let mut r = BitRing::new(100);
        r.set(2);
        assert!(r.any_in_arc(95, 10), "arc 95..=4 wraps over the cut");
        assert_eq!(r.count_in_arc(95, 10), 1);
        assert_eq!(r.first_set_in_arc(95, 10), Some(2));
        assert!(!r.any_in_arc(95, 5));
        // Whole-ring arc from any start.
        assert!(r.any_in_arc(50, 100));
        // Oversized counts clamp to one full revolution.
        assert_eq!(r.count_in_arc(50, 1000), 1);
    }

    #[test]
    fn zero_length_and_empty() {
        let r = BitRing::new(10);
        assert!(!r.any_in_arc(3, 0));
        assert_eq!(r.count_in_arc(3, 0), 0);
        assert_eq!(r.first_set_in_arc(3, 0), None);
        let e = BitRing::new(0);
        assert!(e.is_empty());
        assert!(!e.any_in_arc(0, 0));
    }

    proptest! {
        /// Every arc query agrees with the walked reference, including
        /// wrap-around arcs and arcs longer than the ring.
        #[test]
        fn arc_queries_match_naive_walk(
            n in 1usize..200,
            setbits in vec(any::<u16>(), 0..64),
            start in any::<u16>(),
            count in 0usize..260,
        ) {
            let mut bits = vec![false; n];
            let mut ring = BitRing::new(n);
            for s in setbits {
                let i = s as usize % n;
                bits[i] = true;
                ring.set(i);
            }
            let start = start as usize % n;
            let (any, total, first) = naive_arc(&bits, start, count);
            prop_assert_eq!(ring.any_in_arc(start, count), any);
            prop_assert_eq!(ring.count_in_arc(start, count), total);
            prop_assert_eq!(ring.first_set_in_arc(start, count), first);
            prop_assert_eq!(ring.count_ones() as usize, bits.iter().filter(|&&b| b).count());
        }
    }
}
