//! The simulation clock.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in ticks.
///
/// One tick is the time a flit needs to traverse one bus segment; the RMB's
/// constant wire length (§3.2 "Review") makes this uniform across the ring.
///
/// # Examples
///
/// ```
/// use rmb_sim::Tick;
/// let t = Tick::new(10) + 5;
/// assert_eq!(t, Tick::new(15));
/// assert_eq!(t - Tick::new(10), 5);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
)]
pub struct Tick(u64);

impl Tick {
    /// Time zero.
    pub const ZERO: Tick = Tick(0);

    /// Creates a tick from a raw count.
    pub const fn new(t: u64) -> Self {
        Tick(t)
    }

    /// Returns the raw count.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Saturating difference, in ticks.
    pub const fn since(self, earlier: Tick) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// The next tick.
    pub const fn next(self) -> Tick {
        Tick(self.0 + 1)
    }
}

impl Add<u64> for Tick {
    type Output = Tick;
    fn add(self, rhs: u64) -> Tick {
        Tick(self.0 + rhs)
    }
}

impl AddAssign<u64> for Tick {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Tick> for Tick {
    type Output = u64;
    fn sub(self, rhs: Tick) -> u64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for Tick {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl From<u64> for Tick {
    fn from(v: u64) -> Self {
        Tick(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let mut t = Tick::ZERO;
        t += 3;
        assert_eq!(t, Tick::new(3));
        assert_eq!(t + 2, Tick::new(5));
        assert_eq!(Tick::new(5) - Tick::new(2), 3);
        assert_eq!(Tick::new(2).since(Tick::new(5)), 0);
        assert_eq!(Tick::new(5).since(Tick::new(2)), 3);
        assert_eq!(Tick::new(1).next(), Tick::new(2));
    }

    #[test]
    fn ordering_and_display() {
        assert!(Tick::new(1) < Tick::new(2));
        assert_eq!(Tick::new(7).to_string(), "t7");
        assert_eq!(Tick::from(9u64).get(), 9);
    }
}
