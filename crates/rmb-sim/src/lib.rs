//! Simulation substrate for the RMB reproduction.
//!
//! The RMB paper's protocols are asynchronous hardware; every executable
//! model in this workspace runs them over a deterministic discrete-time
//! substrate provided here:
//!
//! * [`Tick`] — the simulation clock, a newtype over `u64`.
//! * [`EventQueue`] — a stable discrete-event priority queue for models
//!   that are event-driven rather than tick-stepped (e.g. the fat-tree's
//!   variable link lengths).
//! * [`TimingWheel`] — the hierarchical timing wheel underneath
//!   [`EventQueue`]: O(1) schedule/pop for near-future events plus an
//!   O(1) lower-bound peek, used by the event-driven protocol scheduler.
//! * [`IdSlab`] — flat id-keyed storage with sorted, allocation-free id
//!   iteration for hot per-entity loops.
//! * [`BitRing`] — circular `u64`-packed bitmaps with wrap-aware masked
//!   range queries, the substrate of the bit-parallel occupancy kernel.
//! * [`SimRng`] — seeded, stream-splittable randomness so that every
//!   experiment is reproducible from a single seed.
//! * [`QuantileSketch`] — a CKMS targeted-quantiles summary for online
//!   p50/p99/p999 tracking without per-sample retention, used by the
//!   open-loop serving driver.
//! * [`stats`] — counters, online moments, histograms and time series used
//!   by every report in EXPERIMENTS.md.
//! * [`trace`] — structured event tracing used to regenerate the paper's
//!   protocol figures.
//!
//! # Examples
//!
//! ```
//! use rmb_sim::{EventQueue, Tick};
//!
//! let mut q = EventQueue::new();
//! q.schedule(Tick::new(5), "b");
//! q.schedule(Tick::new(2), "a");
//! q.schedule(Tick::new(5), "c"); // same tick: FIFO among equals
//! let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
//! assert_eq!(order, vec!["a", "b", "c"]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitset;
mod clock;
pub mod par;
mod queue;
mod rng;
mod sketch;
mod slab;
pub mod stats;
pub mod trace;
mod wheel;

pub use bitset::{arc_any, BitRing};
pub use clock::Tick;
pub use par::{par_map, par_map_with};
pub use queue::EventQueue;
pub use rng::SimRng;
pub use sketch::QuantileSketch;
pub use slab::IdSlab;
pub use wheel::TimingWheel;
