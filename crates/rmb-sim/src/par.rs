//! Deterministic fork/join parallelism for experiment sweeps.
//!
//! Experiment grids are embarrassingly parallel: every (N, k, load, seed)
//! cell runs an independent simulator. [`par_map`] fans the cells out over
//! scoped worker threads and collects results **by input index**, so the
//! output order — and therefore any serialized report — is byte-identical
//! to a sequential map regardless of thread scheduling. Determinism rules:
//!
//! 1. every cell derives its randomness from its own seed (no shared RNG),
//! 2. results are written to the slot of the cell's input index,
//! 3. no cell reads another cell's output.
//!
//! Worker count comes from [`available_parallelism`] and can be pinned
//! with the `RMB_THREADS` environment variable (`RMB_THREADS=1` forces a
//! sequential in-order run, useful for A/B determinism checks).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads a sweep will use.
pub fn available_parallelism() -> usize {
    if let Ok(v) = std::env::var("RMB_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Maps `f` over `items` on `threads` scoped workers, preserving input
/// order in the output.
///
/// With `threads <= 1` this is exactly `items.iter().map(f).collect()`,
/// including evaluation order.
///
/// # Panics
///
/// Propagates the first worker panic.
pub fn par_map_with<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let workers = threads.min(items.len());
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every index was processed")
        })
        .collect()
}

/// [`par_map_with`] using [`available_parallelism`] workers.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_with(available_parallelism(), items, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = par_map_with(8, &items, |&x| x * x);
        assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn matches_sequential_map_exactly() {
        let items: Vec<u64> = (0..37).collect();
        let serial = par_map_with(1, &items, |&x| x.wrapping_mul(0x9e3779b97f4a7c15));
        let parallel = par_map_with(4, &items, |&x| x.wrapping_mul(0x9e3779b97f4a7c15));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_with(4, &empty, |&x| x).is_empty());
        assert_eq!(par_map_with(4, &[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    #[should_panic]
    fn worker_panics_propagate() {
        let items: Vec<u32> = (0..8).collect();
        let _ = par_map_with(4, &items, |&x| {
            if x == 5 {
                panic!("boom");
            }
            x
        });
    }
}
