//! A stable discrete-event priority queue.

use crate::clock::Tick;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event queue ordered by [`Tick`], FIFO among events scheduled for the
/// same tick.
///
/// Stability matters for reproducibility: two events at the same tick are
/// delivered in the order they were scheduled, so a simulation's outcome is
/// a pure function of its inputs and seed.
///
/// # Examples
///
/// ```
/// use rmb_sim::{EventQueue, Tick};
/// let mut q = EventQueue::new();
/// q.schedule(Tick::new(3), "late");
/// q.schedule(Tick::new(1), "early");
/// assert_eq!(q.pop(), Some((Tick::new(1), "early")));
/// assert_eq!(q.next_tick(), Some(Tick::new(3)));
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    sequence: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    at: Tick,
    sequence: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.sequence == other.sequence
    }
}

impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest tick and, within
        // a tick, the lowest sequence number pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.sequence.cmp(&self.sequence))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            sequence: 0,
        }
    }

    /// Schedules `event` to fire at tick `at`.
    pub fn schedule(&mut self, at: Tick, event: E) {
        let sequence = self.sequence;
        self.sequence += 1;
        self.heap.push(Entry {
            at,
            sequence,
            event,
        });
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(Tick, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// Removes and returns the earliest event only if it fires at or before
    /// `now`.
    pub fn pop_due(&mut self, now: Tick) -> Option<(Tick, E)> {
        if self.next_tick()? <= now {
            self.pop()
        } else {
            None
        }
    }

    /// The tick of the earliest pending event.
    pub fn next_tick(&self) -> Option<Tick> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_tick_then_fifo() {
        let mut q = EventQueue::new();
        q.schedule(Tick::new(2), 'x');
        q.schedule(Tick::new(1), 'a');
        q.schedule(Tick::new(2), 'y');
        q.schedule(Tick::new(1), 'b');
        let drained: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(
            drained,
            vec![
                (Tick::new(1), 'a'),
                (Tick::new(1), 'b'),
                (Tick::new(2), 'x'),
                (Tick::new(2), 'y'),
            ]
        );
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.schedule(Tick::new(5), ());
        assert_eq!(q.pop_due(Tick::new(4)), None);
        assert_eq!(q.pop_due(Tick::new(5)), Some((Tick::new(5), ())));
        assert!(q.is_empty());
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::default();
        assert!(q.is_empty());
        q.schedule(Tick::new(1), 1);
        q.schedule(Tick::new(2), 2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.next_tick(), Some(Tick::new(1)));
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.next_tick(), None);
    }

    #[test]
    fn large_interleaving_stays_sorted() {
        let mut q = EventQueue::new();
        for i in (0..1000u64).rev() {
            q.schedule(Tick::new(i / 10), i);
        }
        let mut last = Tick::ZERO;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
        }
    }
}
