//! A stable discrete-event priority queue.

use crate::clock::Tick;
use crate::wheel::TimingWheel;

/// An event queue ordered by [`Tick`], FIFO among events scheduled for the
/// same tick.
///
/// Stability matters for reproducibility: two events at the same tick are
/// delivered in the order they were scheduled, so a simulation's outcome is
/// a pure function of its inputs and seed.
///
/// Since PR 4 this is a thin wrapper over the hierarchical
/// [`TimingWheel`], giving O(1) schedule and O(1) amortised pops for
/// near-future events instead of the former binary heap's O(log n); the
/// ordering contract is unchanged. Use [`TimingWheel`] directly when you
/// also need its O(1) [`peek_hint`](TimingWheel::peek_hint).
///
/// # Examples
///
/// ```
/// use rmb_sim::{EventQueue, Tick};
/// let mut q = EventQueue::new();
/// q.schedule(Tick::new(3), "late");
/// q.schedule(Tick::new(1), "early");
/// assert_eq!(q.pop(), Some((Tick::new(1), "early")));
/// assert_eq!(q.next_tick(), Some(Tick::new(3)));
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    wheel: TimingWheel<E>,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            wheel: TimingWheel::new(),
        }
    }

    /// Schedules `event` to fire at tick `at`.
    pub fn schedule(&mut self, at: Tick, event: E) {
        self.wheel.schedule(at, event);
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(Tick, E)> {
        self.wheel.pop()
    }

    /// Removes and returns the earliest event only if it fires at or before
    /// `now`.
    pub fn pop_due(&mut self, now: Tick) -> Option<(Tick, E)> {
        self.wheel.pop_due(now)
    }

    /// The tick of the earliest pending event.
    pub fn next_tick(&self) -> Option<Tick> {
        self.wheel.earliest()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.wheel.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.wheel.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.wheel.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_tick_then_fifo() {
        let mut q = EventQueue::new();
        q.schedule(Tick::new(2), 'x');
        q.schedule(Tick::new(1), 'a');
        q.schedule(Tick::new(2), 'y');
        q.schedule(Tick::new(1), 'b');
        let drained: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(
            drained,
            vec![
                (Tick::new(1), 'a'),
                (Tick::new(1), 'b'),
                (Tick::new(2), 'x'),
                (Tick::new(2), 'y'),
            ]
        );
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.schedule(Tick::new(5), ());
        assert_eq!(q.pop_due(Tick::new(4)), None);
        assert_eq!(q.pop_due(Tick::new(5)), Some((Tick::new(5), ())));
        assert!(q.is_empty());
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::default();
        assert!(q.is_empty());
        q.schedule(Tick::new(1), 1);
        q.schedule(Tick::new(2), 2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.next_tick(), Some(Tick::new(1)));
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.next_tick(), None);
    }

    #[test]
    fn large_interleaving_stays_sorted() {
        let mut q = EventQueue::new();
        for i in (0..1000u64).rev() {
            q.schedule(Tick::new(i / 10), i);
        }
        let mut last = Tick::ZERO;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
        }
    }
}
