//! Seeded, splittable randomness.

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A deterministic random stream for simulations.
///
/// Wraps `ChaCha8Rng` (stable across platforms and crate versions, unlike
/// `StdRng`) and adds *stream splitting*: `fork(label)` derives an
/// independent child stream, so that, for example, the arrival process and
/// the clock-jitter process of an experiment can be perturbed independently
/// without disturbing one another.
///
/// # Examples
///
/// ```
/// use rmb_sim::SimRng;
/// use rand::Rng;
///
/// let mut a = SimRng::seed(42);
/// let mut b = SimRng::seed(42);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
///
/// let mut child = a.fork("arrivals");
/// let _ = child.gen::<u64>(); // independent of `a`'s own stream
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: ChaCha8Rng,
}

impl SimRng {
    /// Creates a stream from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        SimRng {
            inner: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child stream named by `label`.
    ///
    /// The child's seed mixes this stream's next word with a hash of the
    /// label, so distinct labels yield distinct streams and the same label
    /// drawn at the same point yields the same stream.
    pub fn fork(&mut self, label: &str) -> SimRng {
        let word = self.inner.next_u64();
        SimRng::seed(word ^ fnv1a(label.as_bytes()))
    }

    /// Chooses an index uniformly in `0..len`. Returns `None` when
    /// `len == 0`.
    pub fn index(&mut self, len: usize) -> Option<usize> {
        if len == 0 {
            None
        } else {
            Some(self.inner.gen_range(0..len))
        }
    }

    /// Flips a coin that lands heads with probability `p` (clamped to
    /// `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.inner.gen_bool(p)
    }

    /// Draws a geometric inter-arrival gap with success probability `p`
    /// per tick: the number of ticks until the next arrival, at least 1.
    /// Falls back to `u64::MAX` for `p <= 0` and 1 for `p >= 1`.
    pub fn geometric_gap(&mut self, p: f64) -> u64 {
        if p >= 1.0 {
            return 1;
        }
        if p <= 0.0 {
            return u64::MAX;
        }
        let u: f64 = self.inner.gen_range(f64::EPSILON..1.0);
        (u.ln() / (1.0 - p).ln()).ceil().max(1.0) as u64
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed(7);
        let mut b = SimRng::seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_with_distinct_labels_differ() {
        let mut root = SimRng::seed(7);
        // Fork both from the same parent position by cloning the parent.
        let mut root2 = root.clone();
        let mut a = root.fork("a");
        let mut b = root2.fork("b");
        let same = (0..16).all(|_| a.next_u64() == b.next_u64());
        assert!(!same);
    }

    #[test]
    fn fork_is_deterministic() {
        let mut r1 = SimRng::seed(9);
        let mut r2 = SimRng::seed(9);
        let mut a = r1.fork("x");
        let mut b = r2.fork("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn index_bounds() {
        let mut r = SimRng::seed(1);
        assert_eq!(r.index(0), None);
        for _ in 0..100 {
            let i = r.index(5).unwrap();
            assert!(i < 5);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed(1);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(r.chance(2.0)); // clamped
    }

    #[test]
    fn geometric_gap_properties() {
        let mut r = SimRng::seed(3);
        assert_eq!(r.geometric_gap(1.5), 1);
        assert_eq!(r.geometric_gap(0.0), u64::MAX);
        let mean: f64 = (0..2000).map(|_| r.geometric_gap(0.25) as f64).sum::<f64>() / 2000.0;
        // Geometric with p = 0.25 has mean 4.
        assert!((mean - 4.0).abs() < 0.5, "mean {mean} too far from 4");
    }
}
