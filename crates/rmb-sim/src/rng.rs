//! Seeded, splittable randomness.

/// A deterministic random stream for simulations.
///
/// Self-contained ChaCha8 generator (stable across platforms and
/// toolchains) with *stream splitting*: `fork(label)` derives an
/// independent child stream, so that, for example, the arrival process and
/// the clock-jitter process of an experiment can be perturbed independently
/// without disturbing one another.
///
/// # Examples
///
/// ```
/// use rmb_sim::SimRng;
///
/// let mut a = SimRng::seed(42);
/// let mut b = SimRng::seed(42);
/// assert_eq!(a.next_u64(), b.next_u64());
///
/// let mut child = a.fork("arrivals");
/// let _ = child.next_u64(); // independent of `a`'s own stream
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    /// ChaCha state: constants, key, counter, nonce.
    state: [u32; 16],
    /// Buffered keystream block.
    block: [u32; 16],
    /// Next unread word in `block`; 16 = exhausted.
    cursor: usize,
}

const CHACHA_ROUNDS: usize = 8;

impl SimRng {
    /// Creates a stream from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        // Expand the seed into a 256-bit key with splitmix64: distinct
        // seeds give uncorrelated keys.
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..4 {
            let w = next();
            state[4 + 2 * i] = w as u32;
            state[5 + 2 * i] = (w >> 32) as u32;
        }
        // Counter and nonce start at zero.
        SimRng {
            state,
            block: [0; 16],
            cursor: 16,
        }
    }

    fn refill(&mut self) {
        let mut x = self.state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            quarter(&mut x, 0, 4, 8, 12);
            quarter(&mut x, 1, 5, 9, 13);
            quarter(&mut x, 2, 6, 10, 14);
            quarter(&mut x, 3, 7, 11, 15);
            // Diagonal round.
            quarter(&mut x, 0, 5, 10, 15);
            quarter(&mut x, 1, 6, 11, 12);
            quarter(&mut x, 2, 7, 8, 13);
            quarter(&mut x, 3, 4, 9, 14);
        }
        for (i, b) in self.block.iter_mut().enumerate() {
            *b = x[i].wrapping_add(self.state[i]);
        }
        // 64-bit block counter in words 12..13.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.cursor = 0;
    }

    /// Next word of the stream.
    pub fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let w = self.block[self.cursor];
        self.cursor += 1;
        w
    }

    /// Next 64-bit word of the stream.
    pub fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        (hi << 32) | lo
    }

    /// Uniform double in `[0, 1)` with 53 random bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Derives an independent child stream named by `label`.
    ///
    /// The child's seed mixes this stream's next word with a hash of the
    /// label, so distinct labels yield distinct streams and the same label
    /// drawn at the same point yields the same stream.
    pub fn fork(&mut self, label: &str) -> SimRng {
        let word = self.next_u64();
        SimRng::seed(word ^ fnv1a(label.as_bytes()))
    }

    /// Uniform draw in `[0, n)`; `n` must be nonzero. Unbiased via bitmask
    /// rejection.
    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        let mask = u64::MAX >> (n - 1).leading_zeros().min(63);
        loop {
            let v = self.next_u64() & mask;
            if v < n {
                return v;
            }
        }
    }

    /// Chooses an index uniformly in `0..len`. Returns `None` when
    /// `len == 0`.
    pub fn index(&mut self, len: usize) -> Option<usize> {
        if len == 0 {
            None
        } else {
            Some(self.below(len as u64) as usize)
        }
    }

    /// Flips a coin that lands heads with probability `p` (clamped to
    /// `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.next_f64() < p || p >= 1.0
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Draws a geometric inter-arrival gap with success probability `p`
    /// per tick: the number of ticks until the next arrival, at least 1.
    /// Falls back to `u64::MAX` for `p <= 0` and 1 for `p >= 1`.
    pub fn geometric_gap(&mut self, p: f64) -> u64 {
        if p >= 1.0 {
            return 1;
        }
        if p <= 0.0 {
            return u64::MAX;
        }
        let u = f64::EPSILON + self.next_f64() * (1.0 - f64::EPSILON);
        (u.ln() / (1.0 - p).ln()).ceil().max(1.0) as u64
    }
}

fn quarter(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed(7);
        let mut b = SimRng::seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_differ() {
        let mut a = SimRng::seed(7);
        let mut b = SimRng::seed(8);
        let same = (0..16).all(|_| a.next_u64() == b.next_u64());
        assert!(!same);
    }

    #[test]
    fn forks_with_distinct_labels_differ() {
        let mut root = SimRng::seed(7);
        // Fork both from the same parent position by cloning the parent.
        let mut root2 = root.clone();
        let mut a = root.fork("a");
        let mut b = root2.fork("b");
        let same = (0..16).all(|_| a.next_u64() == b.next_u64());
        assert!(!same);
    }

    #[test]
    fn fork_is_deterministic() {
        let mut r1 = SimRng::seed(9);
        let mut r2 = SimRng::seed(9);
        let mut a = r1.fork("x");
        let mut b = r2.fork("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn index_bounds() {
        let mut r = SimRng::seed(1);
        assert_eq!(r.index(0), None);
        for _ in 0..100 {
            let i = r.index(5).unwrap();
            assert!(i < 5);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed(1);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(r.chance(2.0)); // clamped
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::seed(5);
        for _ in 0..1000 {
            let u = r.next_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::seed(13);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // And deterministic per seed.
        let mut r2 = SimRng::seed(13);
        let mut v2: Vec<u32> = (0..50).collect();
        r2.shuffle(&mut v2);
        assert_eq!(v, v2);
    }

    #[test]
    fn geometric_gap_properties() {
        let mut r = SimRng::seed(3);
        assert_eq!(r.geometric_gap(1.5), 1);
        assert_eq!(r.geometric_gap(0.0), u64::MAX);
        let mean: f64 = (0..2000).map(|_| r.geometric_gap(0.25) as f64).sum::<f64>() / 2000.0;
        // Geometric with p = 0.25 has mean 4.
        assert!((mean - 4.0).abs() < 0.5, "mean {mean} too far from 4");
    }

    #[test]
    fn chacha_stream_spreads_bits() {
        // Cheap sanity: over 64k bits, ones fraction is near one half.
        let mut r = SimRng::seed(99);
        let ones: u32 = (0..1024).map(|_| r.next_u64().count_ones()).sum();
        let frac = f64::from(ones) / (1024.0 * 64.0);
        assert!((frac - 0.5).abs() < 0.02, "ones fraction {frac}");
    }
}
