//! Streaming quantile sketch for online tail-latency tracking.
//!
//! The open-loop serving driver needs p50/p99/p999 over runs that can
//! last billions of ticks, so it cannot retain samples. This module
//! implements the Cormode–Korn–Muthukrishnan–Srivastava (CKMS) *targeted
//! quantiles* sketch: a sorted summary of `(value, g, Δ)` tuples whose
//! size is bounded by the error targets, not by the stream length, with a
//! provable rank-error guarantee — a query for target φ with error ε
//! returns a value whose rank is within `ε·n` of `φ·n`.
//!
//! The implementation is deterministic (insertion order fully determines
//! the summary), allocation-light, and tuned for the latency use case:
//! values are `u64` ticks, inserts are a binary search plus a short
//! `memmove`, and compression runs every [`COMPRESS_EVERY`] inserts.
//!
//! # Examples
//!
//! ```
//! use rmb_sim::stats::QuantileSketch;
//!
//! let mut q = QuantileSketch::latency_defaults();
//! for v in 1..=10_000u64 {
//!     q.record(v);
//! }
//! let p50 = q.quantile(0.5).unwrap();
//! assert!((4_800..=5_200).contains(&p50), "p50 = {p50}");
//! assert_eq!(q.count(), 10_000);
//! ```

/// One summary tuple: `g` is the gap in rank to the previous tuple,
/// `delta` the uncertainty of this tuple's own rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    v: u64,
    g: u64,
    delta: u64,
}

/// Compression cadence: a full compress pass every this many inserts.
const COMPRESS_EVERY: u64 = 128;

/// A CKMS targeted-quantiles sketch over `u64` samples.
///
/// Construct with explicit `(φ, ε)` targets via [`QuantileSketch::new`]
/// or use [`QuantileSketch::latency_defaults`] (p50 ± 1%, p99 ± 0.1%,
/// p999 ± 0.05% rank error). Queries away from the targets degrade
/// gracefully but only the targets carry the stated guarantee.
#[derive(Debug, Clone)]
pub struct QuantileSketch {
    /// `(phi, epsilon)` targets, each with `0 < phi < 1`, `epsilon > 0`.
    targets: Vec<(f64, f64)>,
    /// Summary, sorted by value.
    entries: Vec<Entry>,
    /// Total samples observed.
    count: u64,
    /// Inserts since the last compression.
    since_compress: u64,
    /// Exact extrema and sum (cheap, and useful alongside percentiles).
    min: u64,
    max: u64,
    sum: u128,
}

impl QuantileSketch {
    /// Creates a sketch tracking the given `(φ, ε)` targets.
    ///
    /// # Panics
    ///
    /// Panics if no targets are given or any target has `φ` outside
    /// `(0, 1)` or `ε <= 0`.
    #[must_use]
    pub fn new(targets: &[(f64, f64)]) -> Self {
        assert!(!targets.is_empty(), "need at least one quantile target");
        for &(phi, eps) in targets {
            assert!(phi > 0.0 && phi < 1.0, "target phi {phi} outside (0, 1)");
            assert!(eps > 0.0, "target epsilon must be positive");
        }
        QuantileSketch {
            targets: targets.to_vec(),
            entries: Vec::new(),
            count: 0,
            since_compress: 0,
            min: u64::MAX,
            max: 0,
            sum: 0,
        }
    }

    /// The standard serving targets: p50 ± 1%, p99 ± 0.1%, p999 ± 0.05%
    /// rank error.
    #[must_use]
    pub fn latency_defaults() -> Self {
        Self::new(&[(0.5, 0.01), (0.99, 0.001), (0.999, 0.0005)])
    }

    /// Samples observed so far.
    pub const fn count(&self) -> u64 {
        self.count
    }

    /// Smallest sample, or `None` before any sample.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` before any sample.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of all samples (0 before any sample).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// Summary tuples currently retained (bounded by the error targets,
    /// not the stream length).
    pub fn retained(&self) -> usize {
        self.entries.len()
    }

    /// The targeted-quantiles invariant `f(r, n)`: how much rank slack a
    /// tuple covering rank `r` may carry. Minimised over the targets,
    /// floored at 1.
    fn invariant(&self, rank: u64, n: u64) -> u64 {
        let r = rank as f64;
        let n = n as f64;
        let mut f = f64::MAX;
        for &(phi, eps) in &self.targets {
            let cand = if r <= phi * n {
                2.0 * eps * (n - r) / (1.0 - phi)
            } else {
                2.0 * eps * r / phi
            };
            f = f.min(cand);
        }
        (f.floor() as u64).max(1)
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.sum += u128::from(v);
        // Insertion point: first entry with value >= v.
        let idx = self.entries.partition_point(|e| e.v < v);
        if idx == 0 || idx == self.entries.len() {
            // New minimum or maximum: exact rank, delta 0.
            self.entries.insert(idx, Entry { v, g: 1, delta: 0 });
        } else {
            // Rank of the predecessor of the insertion point.
            let rank: u64 = self.entries[..idx].iter().map(|e| e.g).sum();
            let delta = self.invariant(rank, self.count).saturating_sub(1);
            self.entries.insert(idx, Entry { v, g: 1, delta });
        }
        self.since_compress += 1;
        if self.since_compress >= COMPRESS_EVERY {
            self.compress();
            self.since_compress = 0;
        }
    }

    /// Records `n` identical samples (used when a batch completes at one
    /// tick with one latency).
    pub fn record_repeated(&mut self, v: u64, n: u64) {
        for _ in 0..n {
            self.record(v);
        }
    }

    /// Merges adjacent tuples whose combined slack stays within the
    /// invariant, bounding the summary size.
    fn compress(&mut self) {
        if self.entries.len() < 3 {
            return;
        }
        let n = self.count;
        // Walk right to left, merging entry i into i+1 when allowed. The
        // first and last entries are never merged away (exact extrema).
        let mut i = self.entries.len() - 2;
        while i >= 1 {
            let rank: u64 = self.entries[..i].iter().map(|e| e.g).sum();
            let merged = self.entries[i].g + self.entries[i + 1].g + self.entries[i + 1].delta;
            if merged <= self.invariant(rank, n) {
                self.entries[i + 1].g += self.entries[i].g;
                self.entries.remove(i);
            }
            i -= 1;
        }
    }

    /// The value at quantile `phi`, or `None` before any sample.
    ///
    /// For the configured targets the returned value's rank is within
    /// `ε·n` of `φ·n`; other quantiles interpolate between summary
    /// tuples with weaker (but still monotone) accuracy.
    pub fn quantile(&self, phi: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let phi = phi.clamp(0.0, 1.0);
        let n = self.count;
        let target = phi * n as f64;
        let slack = self.invariant(target.floor() as u64, n) as f64 / 2.0;
        let mut rank: u64 = 0;
        let mut prev = self.entries[0].v;
        for e in &self.entries {
            if (rank + e.g + e.delta) as f64 > target + slack {
                return Some(prev);
            }
            rank += e.g;
            prev = e.v;
        }
        Some(self.entries.last().expect("count > 0 implies entries").v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimRng;

    /// Exact quantile by sorting: value at rank ceil(phi * n).
    fn exact(samples: &mut [u64], phi: f64) -> u64 {
        samples.sort_unstable();
        let n = samples.len();
        let r = ((phi * n as f64).ceil() as usize).clamp(1, n);
        samples[r - 1]
    }

    /// Rank error of `got` relative to the sorted sample set.
    fn rank_error(sorted: &[u64], got: u64, phi: f64) -> f64 {
        let n = sorted.len() as f64;
        // Rank range occupied by `got` in the sorted data.
        let lo = sorted.partition_point(|&v| v < got) as f64;
        let hi = sorted.partition_point(|&v| v <= got) as f64;
        let target = phi * n;
        if target < lo {
            (lo - target) / n
        } else if target > hi {
            (target - hi) / n
        } else {
            0.0
        }
    }

    #[test]
    fn empty_sketch_has_no_quantiles() {
        let q = QuantileSketch::latency_defaults();
        assert_eq!(q.quantile(0.5), None);
        assert_eq!(q.count(), 0);
        assert_eq!(q.min(), None);
        assert_eq!(q.max(), None);
        assert_eq!(q.mean(), 0.0);
    }

    #[test]
    fn single_sample_is_every_quantile() {
        let mut q = QuantileSketch::latency_defaults();
        q.record(42);
        assert_eq!(q.quantile(0.5), Some(42));
        assert_eq!(q.quantile(0.999), Some(42));
        assert_eq!(q.min(), Some(42));
        assert_eq!(q.max(), Some(42));
    }

    #[test]
    fn uniform_stream_meets_rank_error_bounds() {
        let mut q = QuantileSketch::latency_defaults();
        let mut rng = SimRng::seed(11);
        let mut samples: Vec<u64> = (0..50_000).map(|_| rng.next_u64() % 100_000).collect();
        for &v in &samples {
            q.record(v);
        }
        samples.sort_unstable();
        for &(phi, eps) in &[(0.5, 0.01), (0.99, 0.001), (0.999, 0.0005)] {
            let got = q.quantile(phi).unwrap();
            let err = rank_error(&samples, got, phi);
            // 2x the per-target epsilon absorbs the query-side slack.
            assert!(err <= 2.0 * eps, "phi {phi}: rank error {err} > {}", 2.0 * eps);
        }
    }

    #[test]
    fn heavy_tail_stream_meets_rank_error_bounds() {
        // Latency-shaped data: most samples small, a long sparse tail.
        let mut q = QuantileSketch::latency_defaults();
        let mut rng = SimRng::seed(7);
        let mut samples = Vec::with_capacity(40_000);
        for _ in 0..40_000 {
            let base = 20 + rng.next_u64() % 80;
            let v = if rng.chance(0.01) {
                base + 1_000 + rng.next_u64() % 50_000
            } else {
                base
            };
            samples.push(v);
            q.record(v);
        }
        samples.sort_unstable();
        for &(phi, eps) in &[(0.5, 0.01), (0.99, 0.001), (0.999, 0.0005)] {
            let got = q.quantile(phi).unwrap();
            let err = rank_error(&samples, got, phi);
            assert!(err <= 2.0 * eps, "phi {phi}: rank error {err} > {}", 2.0 * eps);
        }
    }

    #[test]
    fn sorted_and_reversed_insertion_agree_with_exact() {
        for reverse in [false, true] {
            let mut vals: Vec<u64> = (1..=20_000).collect();
            if reverse {
                vals.reverse();
            }
            let mut q = QuantileSketch::latency_defaults();
            for &v in &vals {
                q.record(v);
            }
            let p99 = q.quantile(0.99).unwrap();
            let want = exact(&mut vals, 0.99);
            let diff = p99.abs_diff(want) as f64 / 20_000.0;
            assert!(diff <= 0.002, "reverse={reverse}: p99 {p99} vs exact {want}");
        }
    }

    #[test]
    fn summary_stays_bounded() {
        let mut q = QuantileSketch::latency_defaults();
        let mut rng = SimRng::seed(3);
        for _ in 0..200_000 {
            q.record(rng.next_u64() % 1_000_000);
        }
        // 200k samples compress to a summary orders of magnitude smaller;
        // the bound is a generous multiple of the theoretical size.
        assert!(q.retained() < 5_000, "retained {} tuples", q.retained());
        assert_eq!(q.count(), 200_000);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut q = QuantileSketch::latency_defaults();
            let mut rng = SimRng::seed(99);
            for _ in 0..10_000 {
                q.record(rng.next_u64() % 10_000);
            }
            (q.quantile(0.5), q.quantile(0.99), q.quantile(0.999), q.retained())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn record_repeated_matches_loop() {
        let mut a = QuantileSketch::latency_defaults();
        let mut b = QuantileSketch::latency_defaults();
        a.record_repeated(7, 100);
        for _ in 0..100 {
            b.record(7);
        }
        assert_eq!(a.quantile(0.5), b.quantile(0.5));
        assert_eq!(a.count(), b.count());
    }

    #[test]
    fn quantiles_are_monotone() {
        let mut q = QuantileSketch::latency_defaults();
        let mut rng = SimRng::seed(4);
        for _ in 0..30_000 {
            q.record(rng.next_u64() % 5_000);
        }
        let qs: Vec<u64> = [0.1, 0.25, 0.5, 0.9, 0.99, 0.999]
            .iter()
            .map(|&p| q.quantile(p).unwrap())
            .collect();
        assert!(qs.windows(2).all(|w| w[0] <= w[1]), "{qs:?}");
    }
}
