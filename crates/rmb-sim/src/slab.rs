//! A slab keyed by small monotonically-allocated integer ids.
//!
//! [`IdSlab`] backs hot simulation loops that previously used a
//! `BTreeMap<id, T>`: values live in a flat `Vec` with a free list, a
//! direct-indexed table maps id → slot in O(1), and a sorted id list
//! gives deterministic ascending-id iteration without per-phase
//! allocation. Removal is lazy with respect to the id list — dead ids
//! linger (lookups on them return `None`) until
//! [`compact_active`](IdSlab::compact_active) prunes them in one
//! order-preserving pass, which lets callers remove entries while
//! iterating by index.
//!
//! Ids are used as direct indexes into the id → slot table, so this type
//! is only appropriate for ids drawn from a small dense range (e.g. a
//! simulation's monotone id counter), not arbitrary `u64`s.
//!
//! # Examples
//!
//! ```
//! use rmb_sim::IdSlab;
//! let mut slab = IdSlab::new();
//! slab.insert(0, "a");
//! slab.insert(2, "c");
//! slab.remove(0);
//! slab.compact_active();
//! assert_eq!(slab.active(), &[2]);
//! assert_eq!(slab.get(2), Some(&"c"));
//! ```

/// Sentinel marking an id with no live slot.
const DEAD: u32 = u32::MAX;

/// A flat id-keyed slab with sorted, allocation-free id iteration.
///
/// See the [module docs](self) for the intended usage pattern.
#[derive(Debug, Clone, Default)]
pub struct IdSlab<T> {
    /// Value storage; `None` marks a freed slot awaiting reuse.
    slots: Vec<Option<T>>,
    /// Freed slot indexes available for reuse.
    free: Vec<u32>,
    /// id → slot index, `DEAD` when the id is not live.
    slot_of: Vec<u32>,
    /// Live ids in ascending order, possibly interleaved with ids removed
    /// since the last [`compact_active`](IdSlab::compact_active).
    active: Vec<u64>,
    /// Number of live values (always `<= active.len()`).
    len: usize,
}

impl<T> IdSlab<T> {
    /// Creates an empty slab.
    pub fn new() -> Self {
        IdSlab {
            slots: Vec::new(),
            free: Vec::new(),
            slot_of: Vec::new(),
            active: Vec::new(),
            len: 0,
        }
    }

    /// Inserts `value` under `id`.
    ///
    /// Appending in ascending id order is O(1); out-of-order ids pay a
    /// sorted insertion. Panics if `id` is already live.
    pub fn insert(&mut self, id: u64, value: T) {
        let idx = usize::try_from(id).expect("id fits in memory");
        if self.slot_of.len() <= idx {
            self.slot_of.resize(idx + 1, DEAD);
        }
        assert_eq!(self.slot_of[idx], DEAD, "id {id} already live");
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(value);
                s
            }
            None => {
                self.slots.push(Some(value));
                (self.slots.len() - 1) as u32
            }
        };
        self.slot_of[idx] = slot;
        match self.active.last() {
            Some(&last) if last >= id => {
                let pos = self.active.partition_point(|&a| a < id);
                // A stale duplicate of `id` may remain from a previous
                // life; drop it rather than double-listing the id.
                if self.active.get(pos) != Some(&id) {
                    self.active.insert(pos, id);
                }
            }
            _ => self.active.push(id),
        }
        self.len += 1;
    }

    /// The live value under `id`, or `None`.
    pub fn get(&self, id: u64) -> Option<&T> {
        let slot = *self.slot_of.get(usize::try_from(id).ok()?)?;
        if slot == DEAD {
            return None;
        }
        self.slots[slot as usize].as_ref()
    }

    /// The live value under `id`, mutably, or `None`.
    pub fn get_mut(&mut self, id: u64) -> Option<&mut T> {
        let slot = *self.slot_of.get(usize::try_from(id).ok()?)?;
        if slot == DEAD {
            return None;
        }
        self.slots[slot as usize].as_mut()
    }

    /// `true` when `id` is live.
    pub fn contains(&self, id: u64) -> bool {
        self.get(id).is_some()
    }

    /// Removes and returns the value under `id`, freeing its slot.
    ///
    /// The id stays in [`active`](IdSlab::active) until the next
    /// [`compact_active`](IdSlab::compact_active), so removal during an
    /// index-based iteration over `active` is safe.
    pub fn remove(&mut self, id: u64) -> Option<T> {
        let idx = usize::try_from(id).ok()?;
        let slot = *self.slot_of.get(idx)?;
        if slot == DEAD {
            return None;
        }
        self.slot_of[idx] = DEAD;
        self.free.push(slot);
        self.len -= 1;
        self.slots[slot as usize].take()
    }

    /// Live ids in ascending order, possibly interleaved with stale ids
    /// removed since the last compaction (lookups on those return
    /// `None`).
    pub fn active(&self) -> &[u64] {
        &self.active
    }

    /// Prunes stale ids from [`active`](IdSlab::active), preserving
    /// ascending order. O(active).
    pub fn compact_active(&mut self) {
        if self.active.len() == self.len {
            return;
        }
        let slot_of = &self.slot_of;
        self.active
            .retain(|&id| slot_of.get(id as usize).is_some_and(|&s| s != DEAD));
        debug_assert_eq!(self.active.len(), self.len);
    }

    /// Number of live values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no values are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates `(id, &value)` over live entries in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &T)> {
        self.active.iter().filter_map(move |&id| {
            let slot = *self.slot_of.get(id as usize)?;
            if slot == DEAD {
                return None;
            }
            Some((id, self.slots[slot as usize].as_ref()?))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut slab = IdSlab::new();
        slab.insert(0, "zero");
        slab.insert(1, "one");
        slab.insert(5, "five");
        assert_eq!(slab.len(), 3);
        assert_eq!(slab.get(1), Some(&"one"));
        assert_eq!(slab.get(4), None);
        *slab.get_mut(5).expect("live") = "FIVE";
        assert_eq!(slab.remove(1), Some("one"));
        assert_eq!(slab.remove(1), None);
        assert!(!slab.contains(1));
        assert_eq!(slab.get(5), Some(&"FIVE"));
        assert_eq!(slab.len(), 2);
    }

    #[test]
    fn active_is_sorted_and_lazily_compacted() {
        let mut slab = IdSlab::new();
        for id in [3u64, 1, 2, 0] {
            slab.insert(id, id * 10);
        }
        assert_eq!(slab.active(), &[0, 1, 2, 3]);
        slab.remove(2);
        // Stale id lingers until compaction; lookups already miss.
        assert_eq!(slab.active(), &[0, 1, 2, 3]);
        assert_eq!(slab.get(2), None);
        slab.compact_active();
        assert_eq!(slab.active(), &[0, 1, 3]);
        let collected: Vec<_> = slab.iter().map(|(id, &v)| (id, v)).collect();
        assert_eq!(collected, vec![(0, 0), (1, 10), (3, 30)]);
    }

    #[test]
    fn slots_are_reused_and_reinsert_after_remove_works() {
        let mut slab = IdSlab::new();
        slab.insert(0, 'a');
        slab.insert(1, 'b');
        slab.remove(0);
        // Reinsert the same id before compaction: no duplicate in active.
        slab.insert(0, 'c');
        assert_eq!(slab.active(), &[0, 1]);
        assert_eq!(slab.get(0), Some(&'c'));
        slab.remove(1);
        slab.insert(7, 'd'); // takes the freed slot
        slab.compact_active();
        assert_eq!(slab.active(), &[0, 7]);
        assert_eq!(slab.len(), 2);
    }

    #[test]
    fn removal_during_index_iteration() {
        let mut slab = IdSlab::new();
        for id in 0..6u64 {
            slab.insert(id, id);
        }
        for i in 0..slab.active().len() {
            let id = slab.active()[i];
            if id % 2 == 0 {
                slab.remove(id);
            }
        }
        slab.compact_active();
        assert_eq!(slab.active(), &[1, 3, 5]);
    }
}
