//! Statistics collection: counters, online moments, histograms and
//! utilisation time series.
//!
//! Every number reported in EXPERIMENTS.md flows through these types.
//! The streaming [`QuantileSketch`] (re-exported here next to
//! [`Histogram`]) lives in its own module; it is the bounded-memory
//! percentile tracker behind the open-loop serving reports.

pub use crate::sketch::QuantileSketch;

use std::fmt;

/// A monotonically increasing event counter.
///
/// # Examples
///
/// ```
/// use rmb_sim::stats::Counter;
/// let mut c = Counter::default();
/// c.add(3);
/// c.incr();
/// assert_eq!(c.get(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Adds one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    pub const fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Online mean / variance / extrema over a stream of samples
/// (Welford's algorithm — numerically stable, single pass).
///
/// # Examples
///
/// ```
/// use rmb_sim::stats::OnlineStats;
/// let mut s = OnlineStats::default();
/// for x in [2.0, 4.0, 6.0] {
///     s.record(x);
/// }
/// assert_eq!(s.mean(), 4.0);
/// assert_eq!(s.min(), Some(2.0));
/// assert_eq!(s.max(), Some(6.0));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: Option<f64>,
    max: Option<f64>,
}

impl OnlineStats {
    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = Some(self.min.map_or(x, |m| m.min(x)));
        self.max = Some(self.max.map_or(x, |m| m.max(x)));
    }

    /// Records the same sample `repeats` times in one step (Chan et al.'s
    /// batch merge), used by the simulator's idle-tick fast-forward to
    /// account for skipped ticks without looping. Equivalent to calling
    /// [`record`](Self::record) `repeats` times, up to floating-point
    /// rounding in the running mean/variance.
    pub fn record_repeated(&mut self, x: f64, repeats: u64) {
        if repeats == 0 {
            return;
        }
        let delta = x - self.mean;
        let total = self.count + repeats;
        self.mean += delta * repeats as f64 / total as f64;
        // The batch of identical samples has zero internal variance.
        self.m2 += delta * delta * self.count as f64 * repeats as f64 / total as f64;
        self.count = total;
        self.min = Some(self.min.map_or(x, |m| m.min(x)));
        self.max = Some(self.max.map_or(x, |m| m.max(x)));
    }

    /// Number of samples recorded.
    pub const fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub const fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 for fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample, if any.
    pub const fn min(&self) -> Option<f64> {
        self.min
    }

    /// Largest sample, if any.
    pub const fn max(&self) -> Option<f64> {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 += other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }
}

impl fmt::Display for OnlineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} sd={:.3} min={:.3} max={:.3}",
            self.count,
            self.mean,
            self.std_dev(),
            self.min.unwrap_or(f64::NAN),
            self.max.unwrap_or(f64::NAN)
        )
    }
}

/// A histogram over non-negative integer samples with fixed-width bins plus
/// an overflow bin.
///
/// # Examples
///
/// ```
/// use rmb_sim::stats::Histogram;
/// let mut h = Histogram::new(10, 5); // 5 bins of width 10
/// h.record(0);
/// h.record(12);
/// h.record(999); // overflow
/// assert_eq!(h.bin_count(0), 1);
/// assert_eq!(h.bin_count(1), 1);
/// assert_eq!(h.overflow(), 1);
/// assert_eq!(h.total(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bin_width: u64,
    bins: Vec<u64>,
    overflow: u64,
    total: u64,
    sum: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` bins of width `bin_width`.
    ///
    /// # Panics
    ///
    /// Panics if `bin_width == 0` or `bins == 0`.
    pub fn new(bin_width: u64, bins: usize) -> Self {
        assert!(bin_width > 0, "bin width must be positive");
        assert!(bins > 0, "need at least one bin");
        Histogram {
            bin_width,
            bins: vec![0; bins],
            overflow: 0,
            total: 0,
            sum: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.total += 1;
        self.sum += value;
        let idx = (value / self.bin_width) as usize;
        if idx < self.bins.len() {
            self.bins[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Count in bin `i` (`[i*w, (i+1)*w)`), 0 when out of range.
    pub fn bin_count(&self, i: usize) -> u64 {
        self.bins.get(i).copied().unwrap_or(0)
    }

    /// Count of samples beyond the last bin.
    pub const fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total number of samples.
    pub const fn total(&self) -> u64 {
        self.total
    }

    /// Mean of all samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Approximate quantile `q` in `[0, 1]`, resolved to bin upper edges.
    /// Returns `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.bins.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some((i as u64 + 1) * self.bin_width - 1);
            }
        }
        Some(u64::MAX)
    }

    /// Iterates over `(bin_lower_edge, count)` pairs, skipping empty bins.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.bins
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(move |(i, &c)| (i as u64 * self.bin_width, c))
    }
}

/// A sampled time series, e.g. bus utilisation per tick window.
///
/// Records `(time, value)` pairs at a fixed sampling stride to bound memory.
///
/// # Examples
///
/// ```
/// use rmb_sim::stats::TimeSeries;
/// let mut ts = TimeSeries::new(10); // keep one sample per 10 ticks
/// for t in 0..100 {
///     ts.record(t, t as f64);
/// }
/// assert_eq!(ts.samples().len(), 10);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeSeries {
    stride: u64,
    samples: Vec<(u64, f64)>,
}

impl TimeSeries {
    /// Creates a series that keeps one sample per `stride` ticks
    /// (`stride = 0` keeps everything).
    pub fn new(stride: u64) -> Self {
        TimeSeries {
            stride,
            samples: Vec::new(),
        }
    }

    /// Offers a sample at `time`; kept when it falls on the stride.
    pub fn record(&mut self, time: u64, value: f64) {
        if self.stride <= 1 || time.is_multiple_of(self.stride) {
            self.samples.push((time, value));
        }
    }

    /// The retained samples in recording order.
    pub fn samples(&self) -> &[(u64, f64)] {
        &self.samples
    }

    /// Mean of retained sample values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().map(|&(_, v)| v).sum::<f64>() / self.samples.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::default();
        c.incr();
        c.add(2);
        assert_eq!(c.get(), 3);
        assert_eq!(c.to_string(), "3");
    }

    #[test]
    fn online_stats_moments() {
        let mut s = OnlineStats::default();
        for x in [1.0, 2.0, 3.0, 4.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert!((s.variance() - 1.25).abs() < 1e-12);
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(4.0));
    }

    #[test]
    fn online_stats_merge_equals_sequential() {
        let xs: Vec<f64> = (0..50).map(|i| (i * i) as f64).collect();
        let mut whole = OnlineStats::default();
        for &x in &xs {
            whole.record(x);
        }
        let mut left = OnlineStats::default();
        let mut right = OnlineStats::default();
        for &x in &xs[..20] {
            left.record(x);
        }
        for &x in &xs[20..] {
            right.record(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-6);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn online_stats_merge_with_empty() {
        let mut a = OnlineStats::default();
        a.record(5.0);
        let b = OnlineStats::default();
        a.merge(&b);
        assert_eq!(a.count(), 1);
        let mut e = OnlineStats::default();
        e.merge(&a);
        assert_eq!(e.count(), 1);
        assert_eq!(e.mean(), 5.0);
    }

    #[test]
    fn histogram_binning_and_quantiles() {
        let mut h = Histogram::new(5, 4);
        for v in [0, 4, 5, 9, 10, 19, 100] {
            h.record(v);
        }
        assert_eq!(h.bin_count(0), 2);
        assert_eq!(h.bin_count(1), 2);
        assert_eq!(h.bin_count(2), 1);
        assert_eq!(h.bin_count(3), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 7);
        assert!((h.mean() - 147.0 / 7.0).abs() < 1e-12);
        assert_eq!(h.quantile(0.0), Some(4)); // first non-empty bin edge
        assert!(h.quantile(0.5).unwrap() <= 9);
        assert_eq!(h.quantile(1.0), Some(u64::MAX)); // overflow sample
        assert_eq!(h.iter().count(), 4);
    }

    #[test]
    fn histogram_empty_quantile() {
        let h = Histogram::new(1, 1);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    #[should_panic(expected = "bin width")]
    fn histogram_zero_width_panics() {
        let _ = Histogram::new(0, 4);
    }

    #[test]
    fn time_series_stride() {
        let mut ts = TimeSeries::new(4);
        for t in 0..16 {
            ts.record(t, 1.0);
        }
        assert_eq!(ts.samples().len(), 4);
        assert_eq!(ts.mean(), 1.0);
        let mut dense = TimeSeries::new(0);
        dense.record(0, 2.0);
        dense.record(1, 4.0);
        assert_eq!(dense.samples().len(), 2);
        assert_eq!(dense.mean(), 3.0);
    }
}
