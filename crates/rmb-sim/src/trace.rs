//! Structured event tracing.
//!
//! The RMB paper's figures are protocol diagrams; this module records the
//! protocol events needed to regenerate them (virtual-bus creation, hop
//! extension, compaction moves, acknowledgements, teardown).

use crate::clock::Tick;
use std::fmt;

/// One traced protocol event.
///
/// Field meanings follow the paper's vocabulary: `node` is an INC position,
/// `bus` a physical segment index, `id` a request or virtual-bus number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// When the event happened.
    pub at: Tick,
    /// Event category (stable, machine-readable).
    pub kind: TraceKind,
    /// The request / virtual bus involved, if any.
    pub id: Option<u64>,
    /// The INC involved, if any (ring position).
    pub node: Option<u32>,
    /// The bus segment involved, if any.
    pub bus: Option<u16>,
    /// Free-form detail for human consumption.
    pub detail: String,
}

/// Categories of traced events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum TraceKind {
    /// A header flit was inserted at the top bus of its source INC.
    Inject,
    /// The header advanced one hop, extending the virtual bus.
    Extend,
    /// The destination accepted and a `Hack` started back.
    Accept,
    /// The destination refused and a `Nack` started back.
    Refuse,
    /// A data flit was delivered to the destination PE.
    Deliver,
    /// A compaction move: one hop of a virtual bus moved down one segment.
    CompactMove,
    /// An odd/even cycle transition at an INC.
    CycleSwitch,
    /// The final-flit acknowledgement removed the virtual bus.
    Teardown,
    /// A scheduled fault activated (segment stuck, link cut, INC dead).
    FaultInject,
    /// A scheduled fault healed.
    FaultRepair,
    /// A live circuit was torn down because a fault struck a resource it
    /// occupied or depended on.
    FaultKill,
    /// A request exhausted its retry budget and was dropped.
    Abort,
    /// A message finished a leg of a hierarchical route and entered a
    /// bridge INC's bounded queue.
    BridgeIngress,
    /// A message left a bridge queue to start its next leg (or was
    /// refused because the downstream bridge queue was full — see the
    /// event detail).
    BridgeEgress,
}

impl fmt::Display for TraceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TraceKind::Inject => "inject",
            TraceKind::Extend => "extend",
            TraceKind::Accept => "accept",
            TraceKind::Refuse => "refuse",
            TraceKind::Deliver => "deliver",
            TraceKind::CompactMove => "compact-move",
            TraceKind::CycleSwitch => "cycle-switch",
            TraceKind::Teardown => "teardown",
            TraceKind::FaultInject => "fault-inject",
            TraceKind::FaultRepair => "fault-repair",
            TraceKind::FaultKill => "fault-kill",
            TraceKind::Abort => "abort",
            TraceKind::BridgeIngress => "bridge-ingress",
            TraceKind::BridgeEgress => "bridge-egress",
        };
        f.write_str(s)
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.at, self.kind)?;
        if let Some(id) = self.id {
            write!(f, " v{id}")?;
        }
        if let Some(node) = self.node {
            write!(f, " n{node}")?;
        }
        if let Some(bus) = self.bus {
            write!(f, " b{bus}")?;
        }
        if !self.detail.is_empty() {
            write!(f, " — {}", self.detail)?;
        }
        Ok(())
    }
}

/// Consumes trace events. Implemented by recorders and by the null sink.
pub trait TraceSink {
    /// Accepts one event.
    fn record(&mut self, event: TraceEvent);

    /// `true` when events would actually be kept. Producers may use this to
    /// skip building event payloads entirely.
    fn enabled(&self) -> bool {
        true
    }
}

/// Discards all events; the zero-overhead default.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _event: TraceEvent) {}
    fn enabled(&self) -> bool {
        false
    }
}

/// Keeps every event in memory, for tests and figure regeneration.
#[derive(Debug, Clone, Default)]
pub struct VecSink {
    events: Vec<TraceEvent>,
}

impl VecSink {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        VecSink::default()
    }

    /// The recorded events, in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Extracts the recorded events.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }

    /// Events of one kind, in order.
    pub fn of_kind(&self, kind: TraceKind) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.kind == kind)
    }
}

impl TraceSink for VecSink {
    fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }
}

impl TraceSink for &mut VecSink {
    fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(kind: TraceKind) -> TraceEvent {
        TraceEvent {
            at: Tick::new(3),
            kind,
            id: Some(1),
            node: Some(2),
            bus: Some(0),
            detail: "x".to_owned(),
        }
    }

    #[test]
    fn null_sink_reports_disabled() {
        let mut s = NullSink;
        assert!(!s.enabled());
        s.record(sample(TraceKind::Inject)); // no-op, must not panic
    }

    #[test]
    fn vec_sink_records_in_order() {
        let mut s = VecSink::new();
        assert!(s.enabled());
        s.record(sample(TraceKind::Inject));
        s.record(sample(TraceKind::Extend));
        s.record(sample(TraceKind::CompactMove));
        assert_eq!(s.events().len(), 3);
        assert_eq!(s.of_kind(TraceKind::Extend).count(), 1);
        let evs = s.into_events();
        assert_eq!(evs[0].kind, TraceKind::Inject);
    }

    #[test]
    fn display_is_compact() {
        let e = sample(TraceKind::CompactMove);
        assert_eq!(e.to_string(), "t3 compact-move v1 n2 b0 — x");
        let bare = TraceEvent {
            at: Tick::ZERO,
            kind: TraceKind::CycleSwitch,
            id: None,
            node: None,
            bus: None,
            detail: String::new(),
        };
        assert_eq!(bare.to_string(), "t0 cycle-switch");
    }

    #[test]
    fn fault_kinds_display_kebab_case() {
        assert_eq!(TraceKind::FaultInject.to_string(), "fault-inject");
        assert_eq!(TraceKind::FaultRepair.to_string(), "fault-repair");
        assert_eq!(TraceKind::FaultKill.to_string(), "fault-kill");
        assert_eq!(TraceKind::Abort.to_string(), "abort");
        assert_eq!(TraceKind::BridgeIngress.to_string(), "bridge-ingress");
        assert_eq!(TraceKind::BridgeEgress.to_string(), "bridge-egress");
    }
}
