//! A hierarchical timing wheel.
//!
//! [`TimingWheel`] stores pending events bucketed by due tick across four
//! levels of 64 slots each, giving O(1) `schedule` and O(1) amortised pops
//! for events within the ~16.7M-tick horizon. Events beyond the horizon go
//! to an overflow list and are promoted into the wheel as the cursor
//! advances; events scheduled in the past (before the last pop) go to an
//! overdue list so the structure never loses work.
//!
//! Unlike the textbook design there is **no per-tick cascading**: entries
//! are placed once, at the level whose span covers their distance from the
//! cursor, and pops locate the minimum directly. This works because the
//! cursor never exceeds the earliest pending due tick, so every pending
//! entry at level `L` has a due tick in `[cursor, cursor + 64^(L+1))` —
//! exactly one revolution — and the first occupied slot in ring order from
//! the cursor's slot identifies the level's minimum (with one wrap-around
//! case at the cursor's own slot, handled explicitly).
//!
//! Ordering is identical to [`crate::EventQueue`]: by due tick, FIFO among
//! events scheduled for the same tick, regardless of which internal bucket
//! each entry landed in.
//!
//! # Examples
//!
//! ```
//! use rmb_sim::{Tick, TimingWheel};
//! let mut w = TimingWheel::new();
//! w.schedule(Tick::new(3), "late");
//! w.schedule(Tick::new(1), "early");
//! assert_eq!(w.pop_due(Tick::new(2)), Some((Tick::new(1), "early")));
//! assert_eq!(w.pop_due(Tick::new(2)), None);
//! assert_eq!(w.peek_hint(), Some(Tick::new(3)));
//! ```

use crate::clock::Tick;

const BITS: u32 = 6;
const SLOTS: usize = 1 << BITS; // 64
const LEVELS: usize = 4;
/// Scheduling horizon: events further than this from the cursor overflow.
const HORIZON: u64 = 1 << (BITS * LEVELS as u32); // 64^4 = 16_777_216

#[derive(Debug, Clone)]
struct Entry<E> {
    at: u64,
    seq: u64,
    event: E,
}

/// Where `locate_min` found the earliest entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MinLoc {
    Overdue(usize),
    Overflow(usize),
    Slot(usize, usize), // (flat slot index, index within the slot's Vec)
}

/// A hierarchical timing wheel: an event queue with O(1) `schedule` and
/// O(1) amortised `pop_due` for events within a ~16.7M-tick horizon.
///
/// Same ordering contract as [`crate::EventQueue`] (due tick, then FIFO),
/// plus an O(1) [`peek_hint`](TimingWheel::peek_hint) lower bound on the
/// earliest pending tick — the primitive that lets a simulation loop ask
/// "anything due now?" every tick without paying a scan.
#[derive(Debug, Clone)]
pub struct TimingWheel<E> {
    /// `LEVELS * SLOTS` buckets, flattened level-major.
    slots: Vec<Vec<Entry<E>>>,
    /// Bitmask of non-empty slots, one word per level.
    occupancy: [u64; LEVELS],
    /// Entries scheduled further than `HORIZON` from the cursor.
    overflow: Vec<Entry<E>>,
    /// Cached minimum due tick in `overflow` (`u64::MAX` when empty).
    overflow_min: u64,
    /// Entries scheduled before the cursor (in the past).
    overdue: Vec<Entry<E>>,
    /// Due tick of the last popped entry; never exceeds the earliest
    /// pending wheel entry, which is what makes no-cascade placement sound.
    cursor: u64,
    /// Lower bound on the earliest pending due tick (`u64::MAX` if empty).
    hint: u64,
    /// When `true`, `hint` equals the earliest pending due tick exactly.
    hint_exact: bool,
    len: usize,
    seq: u64,
}

impl<E> TimingWheel<E> {
    /// Creates an empty wheel.
    pub fn new() -> Self {
        TimingWheel {
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occupancy: [0; LEVELS],
            overflow: Vec::new(),
            overflow_min: u64::MAX,
            overdue: Vec::new(),
            cursor: 0,
            hint: u64::MAX,
            hint_exact: true,
            len: 0,
            seq: 0,
        }
    }

    /// Schedules `event` to fire at tick `at`. O(1).
    pub fn schedule(&mut self, at: Tick, event: E) {
        let at = at.get();
        let seq = self.seq;
        self.seq += 1;
        self.place(Entry { at, seq, event });
        self.len += 1;
        // A new entry at or below the hint pins the minimum exactly at
        // `at`; above the hint it cannot disturb the lower bound.
        if at <= self.hint {
            self.hint = at;
            self.hint_exact = true;
        }
    }

    /// Removes and returns the earliest event (by tick, then FIFO), or
    /// `None` when empty.
    pub fn pop(&mut self) -> Option<(Tick, E)> {
        self.promote_overflow();
        let (at, _, loc) = self.locate_min()?;
        Some((Tick::new(at), self.remove(at, loc)))
    }

    /// Removes and returns the earliest event only if it fires at or
    /// before `now`.
    ///
    /// Whenever this returns `None`, the hint is left *exact*: a
    /// subsequent [`peek_hint`](TimingWheel::peek_hint) reports the true
    /// earliest pending tick (or `None` when empty) at O(1) cost.
    pub fn pop_due(&mut self, now: Tick) -> Option<(Tick, E)> {
        if self.len == 0 {
            return None;
        }
        if self.hint_exact && self.hint > now.get() {
            return None;
        }
        self.promote_overflow();
        let (at, _, loc) = self.locate_min().expect("len > 0");
        self.hint = at;
        self.hint_exact = true;
        if at > now.get() {
            return None;
        }
        Some((Tick::new(at), self.remove(at, loc)))
    }

    /// The earliest pending due tick, computed exactly (refreshing the
    /// hint), or `None` when empty.
    pub fn next_due(&mut self) -> Option<Tick> {
        if self.len == 0 {
            return None;
        }
        if !self.hint_exact {
            self.promote_overflow();
            let (at, _, _) = self.locate_min().expect("len > 0");
            self.hint = at;
            self.hint_exact = true;
        }
        Some(Tick::new(self.hint))
    }

    /// O(1) lower bound on the earliest pending due tick; `None` when
    /// empty. Exact immediately after [`pop_due`](TimingWheel::pop_due)
    /// returned `None` or after [`next_due`](TimingWheel::next_due);
    /// otherwise it may undershoot (never overshoot).
    pub fn peek_hint(&self) -> Option<Tick> {
        if self.len == 0 {
            None
        } else {
            Some(Tick::new(self.hint))
        }
    }

    /// The earliest pending due tick, computed exactly without mutating
    /// the wheel. O(levels × slots) worst case.
    pub fn earliest(&self) -> Option<Tick> {
        self.locate_min().map(|(at, _, _)| Tick::new(at))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drops all pending events. The cursor is preserved, so tick
    /// monotonicity guarantees continue to hold across a clear.
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            s.clear();
        }
        self.occupancy = [0; LEVELS];
        self.overflow.clear();
        self.overflow_min = u64::MAX;
        self.overdue.clear();
        self.hint = u64::MAX;
        self.hint_exact = true;
        self.len = 0;
    }

    /// Buckets one entry relative to the current cursor.
    fn place(&mut self, e: Entry<E>) {
        if e.at < self.cursor {
            self.overdue.push(e);
            return;
        }
        let delta = e.at - self.cursor;
        if delta >= HORIZON {
            self.overflow_min = self.overflow_min.min(e.at);
            self.overflow.push(e);
            return;
        }
        let level = Self::level_for(delta);
        let slot = Self::slot_of(e.at, level);
        self.occupancy[level] |= 1u64 << slot;
        self.slots[level * SLOTS + slot].push(e);
    }

    fn level_for(delta: u64) -> usize {
        debug_assert!(delta < HORIZON);
        if delta < 1 << BITS {
            0
        } else if delta < 1 << (2 * BITS) {
            1
        } else if delta < 1 << (3 * BITS) {
            2
        } else {
            3
        }
    }

    fn slot_of(at: u64, level: usize) -> usize {
        ((at >> (BITS * level as u32)) & (SLOTS as u64 - 1)) as usize
    }

    /// Moves overflow entries whose distance from the cursor has dropped
    /// below the horizon into the wheel proper. Each entry is promoted at
    /// most once over its lifetime (the cursor is monotone), so the cost
    /// amortises to O(1) per event.
    fn promote_overflow(&mut self) {
        if self.overflow_min.saturating_sub(self.cursor) >= HORIZON {
            return;
        }
        let pending = std::mem::take(&mut self.overflow);
        self.overflow_min = u64::MAX;
        for e in pending {
            if e.at - self.cursor < HORIZON {
                let level = Self::level_for(e.at - self.cursor);
                let slot = Self::slot_of(e.at, level);
                self.occupancy[level] |= 1u64 << slot;
                self.slots[level * SLOTS + slot].push(e);
            } else {
                self.overflow_min = self.overflow_min.min(e.at);
                self.overflow.push(e);
            }
        }
    }

    /// Finds the pending entry with the smallest `(at, seq)`, or `None`
    /// when empty. Read-only; does not touch the hint.
    fn locate_min(&self) -> Option<(u64, u64, MinLoc)> {
        fn consider(
            best: &mut Option<(u64, u64, MinLoc)>,
            at: u64,
            seq: u64,
            loc: MinLoc,
        ) {
            match best {
                Some((b_at, b_seq, _)) if (*b_at, *b_seq) <= (at, seq) => {}
                _ => *best = Some((at, seq, loc)),
            }
        }
        let mut best: Option<(u64, u64, MinLoc)> = None;
        for (i, e) in self.overdue.iter().enumerate() {
            consider(&mut best, e.at, e.seq, MinLoc::Overdue(i));
        }
        for level in 0..LEVELS {
            if let Some((at, seq, flat, idx)) = self.level_min(level) {
                consider(&mut best, at, seq, MinLoc::Slot(flat, idx));
            }
        }
        // Overflow entries usually sit beyond every wheel entry, but an
        // entry scheduled long ago (small placement cursor) may now be
        // comparable; only then pay the scan.
        if !self.overflow.is_empty()
            && best.is_none_or(|(b_at, _, _)| self.overflow_min <= b_at)
        {
            for (i, e) in self.overflow.iter().enumerate() {
                consider(&mut best, e.at, e.seq, MinLoc::Overflow(i));
            }
        }
        best
    }

    /// The minimum `(at, seq)` entry within one level, as
    /// `(at, seq, flat_slot_index, index_in_slot)`.
    fn level_min(&self, level: usize) -> Option<(u64, u64, usize, usize)> {
        let occ = self.occupancy[level];
        if occ == 0 {
            return None;
        }
        let sc = Self::slot_of(self.cursor, level);
        // First occupied slot in ring order starting at the cursor's slot.
        let first = (sc
            + occ.rotate_right(sc as u32).trailing_zeros() as usize)
            % SLOTS;
        if first != sc || level == 0 {
            // Every entry here is nearer than any entry in a ring-later
            // slot (at level 0 a slot holds exactly one due tick, so the
            // cursor slot cannot mix near and wrapped entries either).
            return Some(self.slot_min(level * SLOTS + first));
        }
        // The cursor's own slot is the only one whose window is split by
        // the revolution boundary: it may hold entries due within the
        // cursor's current window ("near") and entries due one full
        // revolution later ("wrapped"). Near entries beat everything;
        // wrapped entries lose to any other occupied slot.
        let width = 1u64 << (BITS * level as u32);
        let window_end = (self.cursor / width + 1) * width;
        let mut near: Option<(u64, u64, usize)> = None;
        let mut wrapped: Option<(u64, u64, usize)> = None;
        for (i, e) in self.slots[level * SLOTS + sc].iter().enumerate() {
            let bucket = if e.at < window_end { &mut near } else { &mut wrapped };
            match bucket {
                Some((at, seq, _)) if (*at, *seq) <= (e.at, e.seq) => {}
                _ => *bucket = Some((e.at, e.seq, i)),
            }
        }
        if let Some((at, seq, i)) = near {
            return Some((at, seq, level * SLOTS + sc, i));
        }
        let rest = occ & !(1u64 << sc);
        if rest != 0 {
            let next = (sc + 1
                + rest
                    .rotate_right(sc as u32 + 1)
                    .trailing_zeros() as usize)
                % SLOTS;
            return Some(self.slot_min(level * SLOTS + next));
        }
        wrapped.map(|(at, seq, i)| (at, seq, level * SLOTS + sc, i))
    }

    /// The minimum `(at, seq)` entry within one (non-empty) flat slot.
    fn slot_min(&self, flat: usize) -> (u64, u64, usize, usize) {
        let mut best: Option<(u64, u64, usize)> = None;
        for (i, e) in self.slots[flat].iter().enumerate() {
            match best {
                Some((at, seq, _)) if (at, seq) <= (e.at, e.seq) => {}
                _ => best = Some((e.at, e.seq, i)),
            }
        }
        let (at, seq, i) = best.expect("slot marked occupied");
        (at, seq, flat, i)
    }

    /// Removes the located entry, advances the cursor, and downgrades the
    /// hint to a (still valid) lower bound.
    fn remove(&mut self, at: u64, loc: MinLoc) -> E {
        let e = match loc {
            MinLoc::Overdue(i) => self.overdue.swap_remove(i),
            MinLoc::Overflow(i) => {
                let e = self.overflow.swap_remove(i);
                self.overflow_min =
                    self.overflow.iter().map(|e| e.at).min().unwrap_or(u64::MAX);
                e
            }
            MinLoc::Slot(flat, i) => {
                let e = self.slots[flat].swap_remove(i);
                if self.slots[flat].is_empty() {
                    self.occupancy[flat / SLOTS] &= !(1u64 << (flat % SLOTS));
                }
                e
            }
        };
        self.len -= 1;
        // `at` is the global minimum, so remaining entries are >= `at`
        // and the cursor stays at or below every pending due tick.
        self.cursor = self.cursor.max(at);
        self.hint = at;
        self.hint_exact = false;
        e.event
    }
}

impl<E> Default for TimingWheel<E> {
    fn default() -> Self {
        TimingWheel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_tick_then_fifo() {
        let mut w = TimingWheel::new();
        w.schedule(Tick::new(2), 'x');
        w.schedule(Tick::new(1), 'a');
        w.schedule(Tick::new(2), 'y');
        w.schedule(Tick::new(1), 'b');
        let drained: Vec<_> = std::iter::from_fn(|| w.pop()).collect();
        assert_eq!(
            drained,
            vec![
                (Tick::new(1), 'a'),
                (Tick::new(1), 'b'),
                (Tick::new(2), 'x'),
                (Tick::new(2), 'y'),
            ]
        );
    }

    #[test]
    fn pop_due_respects_now_and_leaves_exact_hint() {
        let mut w = TimingWheel::new();
        w.schedule(Tick::new(5), ());
        assert_eq!(w.pop_due(Tick::new(4)), None);
        assert_eq!(w.peek_hint(), Some(Tick::new(5)));
        assert_eq!(w.pop_due(Tick::new(5)), Some((Tick::new(5), ())));
        assert!(w.is_empty());
        assert_eq!(w.peek_hint(), None);
    }

    #[test]
    fn hint_never_overshoots() {
        let mut w = TimingWheel::new();
        w.schedule(Tick::new(100), 1);
        w.schedule(Tick::new(7), 2);
        let hint = w.peek_hint().expect("non-empty");
        assert!(hint <= Tick::new(7));
        assert_eq!(w.next_due(), Some(Tick::new(7)));
        assert_eq!(w.peek_hint(), Some(Tick::new(7)));
    }

    #[test]
    fn scheduling_in_the_past_still_delivers() {
        let mut w = TimingWheel::new();
        w.schedule(Tick::new(50), "future");
        assert_eq!(w.pop(), Some((Tick::new(50), "future")));
        // Cursor is now 50; an earlier tick must still come out first.
        w.schedule(Tick::new(10), "past");
        w.schedule(Tick::new(60), "later");
        assert_eq!(w.pop(), Some((Tick::new(10), "past")));
        assert_eq!(w.pop(), Some((Tick::new(60), "later")));
    }

    #[test]
    fn far_future_overflow_promotes() {
        let mut w = TimingWheel::new();
        let far = Tick::new(3 * HORIZON + 17);
        w.schedule(far, "far");
        w.schedule(Tick::new(4), "near");
        assert_eq!(w.pop(), Some((Tick::new(4), "near")));
        assert_eq!(w.next_due(), Some(far));
        assert_eq!(w.pop(), Some((far, "far")));
        assert!(w.is_empty());
    }

    #[test]
    fn cursor_slot_wrap_at_upper_level() {
        // Force the level-1 cursor-slot split: with the cursor mid-window,
        // an entry one revolution later maps to the same level-1 slot as a
        // near entry, and a middle entry occupies a different slot.
        let mut w = TimingWheel::new();
        w.schedule(Tick::new(100), "warm");
        assert_eq!(w.pop(), Some((Tick::new(100), "warm"))); // cursor = 100
        let rev = 1u64 << (2 * BITS); // level-1 revolution = 4096
        w.schedule(Tick::new(100 + rev), "wrapped"); // same level-1 slot as cursor
        w.schedule(Tick::new(101), "near"); // cursor slot, near side
        w.schedule(Tick::new(900), "middle"); // different level-1 slot
        assert_eq!(w.pop(), Some((Tick::new(101), "near")));
        assert_eq!(w.pop(), Some((Tick::new(900), "middle")));
        assert_eq!(w.pop(), Some((Tick::new(100 + rev), "wrapped")));
    }

    #[test]
    fn len_and_clear() {
        let mut w = TimingWheel::default();
        assert!(w.is_empty());
        w.schedule(Tick::new(1), 1);
        w.schedule(Tick::new(2), 2);
        assert_eq!(w.len(), 2);
        assert_eq!(w.earliest(), Some(Tick::new(1)));
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.earliest(), None);
        assert_eq!(w.peek_hint(), None);
    }

    /// Model check: the wheel must agree with a plain binary heap on a
    /// randomized schedule/pop interleaving spanning all levels, overflow,
    /// and past scheduling.
    #[test]
    fn agrees_with_reference_model() {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        for trial in 0..24u64 {
            let mut rng = crate::SimRng::seed(0x8ee1 + trial);
            let mut wheel = TimingWheel::new();
            let mut model: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
            let mut seq = 0u64;
            let mut now = 0u64;
            for _ in 0..600 {
                let roll = rng.next_u32() % 10;
                if roll < 6 {
                    // Spread across levels: mostly near, a tail far past
                    // the horizon, and occasionally behind the cursor.
                    let span = match rng.next_u32() % 8 {
                        0..=3 => 64,
                        4 => 4096,
                        5 => 1 << 18,
                        6 => HORIZON / 2,
                        _ => 3 * HORIZON,
                    };
                    let base = now.saturating_sub(span / 16);
                    let at = base + rng.next_u64() % span;
                    wheel.schedule(Tick::new(at), seq);
                    model.push(Reverse((at, seq)));
                    seq += 1;
                } else if roll < 9 {
                    now += rng.next_u64() % 200;
                    loop {
                        let got = wheel.pop_due(Tick::new(now));
                        let want = match model.peek() {
                            Some(&Reverse((at, _))) if at <= now => {
                                model.pop().map(|Reverse((at, s))| (Tick::new(at), s))
                            }
                            _ => None,
                        };
                        assert_eq!(got, want, "trial {trial} now {now}");
                        if got.is_none() {
                            break;
                        }
                    }
                    // After a None-returning pop_due the hint is exact.
                    let expect = model.peek().map(|&Reverse((at, _))| Tick::new(at));
                    assert_eq!(wheel.peek_hint(), expect, "trial {trial} hint");
                } else {
                    let got = wheel.pop();
                    let want = model.pop().map(|Reverse((at, s))| (Tick::new(at), s));
                    assert_eq!(got, want, "trial {trial} pop");
                    if let Some((at, _)) = got {
                        now = now.max(at.get());
                    }
                }
                assert_eq!(wheel.len(), model.len());
            }
            let mut last = (0u64, 0u64);
            while let Some(Reverse(want)) = model.pop() {
                let (at, s) = wheel.pop().expect("wheel drained early");
                assert_eq!((at.get(), s), want, "trial {trial} drain");
                assert!(want >= last);
                last = want;
            }
            assert!(wheel.is_empty());
        }
    }
}
