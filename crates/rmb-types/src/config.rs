//! Configuration of an RMB instance.

use crate::error::ConfigError;
use crate::ids::{BusIndex, RingSize};

/// Where new header flits may be inserted into the multiple bus system.
///
/// The paper restricts insertion to the top bus segment `k - 1` (§2.2): each
/// INC then has to monitor only one segment for header flits, and deadlock
/// during circuit establishment is avoided. `AnyFreeBus` is an *ablation*
/// mode used to measure what that restriction costs and buys; it is not part
/// of the paper's design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum InsertionPolicy {
    /// Paper behaviour: new requests enter only at bus segment `k - 1`.
    #[default]
    TopBusOnly,
    /// Ablation: a new request may enter at the highest currently-free
    /// segment of the source hop.
    AnyFreeBus,
}

/// How data-flit acknowledgements are generated.
///
/// The paper says each flit, or a group of flits, is acknowledged, and that
/// `Dack` "may also be used for flow control" (§2.2). `Windowed { window }`
/// caps the number of unacknowledged data flits in flight; `PerFlit` is the
/// degenerate window of 1; `Unlimited` streams at wire speed and uses Dacks
/// only for accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[derive(Default)]
pub enum AckMode {
    /// One outstanding data flit at a time (stop-and-wait).
    PerFlit,
    /// At most `window` unacknowledged data flits in flight.
    Windowed {
        /// Maximum number of unacknowledged data flits.
        window: u32,
    },
    /// No flow-control limit; the circuit is a clean pipeline.
    #[default]
    Unlimited,
}


/// Per-node behavioural limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeConfig {
    /// How many sends a PE may have in flight at once. The paper's base
    /// design and the Theorem 1 argument assume 1; values above 1 model the
    /// §4 "multiple send/receive messages per node" future-work extension.
    pub max_concurrent_sends: u32,
    /// How many messages a PE may be receiving at once (paper: 1).
    pub max_concurrent_receives: u32,
    /// Ticks a refused request waits before re-attempting insertion.
    pub retry_backoff: u64,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            max_concurrent_sends: 1,
            max_concurrent_receives: 1,
            retry_backoff: 4,
        }
    }
}

/// Complete static configuration of an RMB instance.
///
/// # Examples
///
/// ```
/// use rmb_types::RmbConfig;
/// let cfg = RmbConfig::builder(32, 8)
///     .compaction(true)
///     .retry_backoff(8)
///     .build()?;
/// assert_eq!(cfg.buses(), 8);
/// # Ok::<(), rmb_types::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RmbConfig {
    nodes: RingSize,
    buses: u16,
    /// Whether the compaction protocol runs (§2.4). Disabling it is the
    /// paper's implicit baseline: the top bus is then never released early
    /// and utilisation collapses; measured by the compaction ablation.
    pub compaction: bool,
    /// Whether compaction may move a virtual bus before its `Hack` has been
    /// received. The paper allows this "to release the top bus as soon as
    /// possible" (§2.2); turning it off is an ablation.
    pub early_compaction: bool,
    /// Insertion policy for new header flits.
    pub insertion: InsertionPolicy,
    /// If set, a header flit parked (blocked) at an intermediate INC for
    /// more than this many ticks is refused by that INC with a `Nack`,
    /// releasing its partial virtual bus for a later retry.
    ///
    /// The paper does not specify this mechanism; without it, a saturated
    /// one-way ring can reach a circular-wait state in which every hop is
    /// full of partial circuits and no header can ever advance (see the
    /// deadlock experiments in EXPERIMENTS.md). `None` (the default) runs
    /// the paper's protocol verbatim.
    pub head_timeout: Option<u64>,
    /// Data-flit acknowledgement / flow-control mode.
    pub ack_mode: AckMode,
    /// Per-node limits.
    pub node: NodeConfig,
}

impl RmbConfig {
    /// Creates the default configuration for `n` nodes and `k` buses.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `n < 2` (no communication possible) or
    /// `k == 0` (no buses).
    pub fn new(n: u32, k: u16) -> Result<Self, ConfigError> {
        RmbConfig::builder(n, k).build()
    }

    /// Starts building a configuration for `n` nodes and `k` buses.
    pub fn builder(n: u32, k: u16) -> RmbConfigBuilder {
        RmbConfigBuilder {
            nodes: n,
            buses: k,
            compaction: true,
            early_compaction: true,
            insertion: InsertionPolicy::default(),
            head_timeout: None,
            ack_mode: AckMode::default(),
            node: NodeConfig::default(),
        }
    }

    /// Ring size `N`.
    pub const fn nodes(&self) -> RingSize {
        self.nodes
    }

    /// Number of parallel bus segments `k`.
    pub const fn buses(&self) -> u16 {
        self.buses
    }

    /// The top bus segment `k - 1`, where new requests are inserted.
    pub const fn top_bus(&self) -> BusIndex {
        BusIndex::new(self.buses - 1)
    }
}

/// Builder for [`RmbConfig`] (see [`RmbConfig::builder`]).
#[derive(Debug, Clone)]
pub struct RmbConfigBuilder {
    nodes: u32,
    buses: u16,
    compaction: bool,
    early_compaction: bool,
    insertion: InsertionPolicy,
    head_timeout: Option<u64>,
    ack_mode: AckMode,
    node: NodeConfig,
}

impl RmbConfigBuilder {
    /// Enables or disables the compaction protocol.
    pub fn compaction(mut self, on: bool) -> Self {
        self.compaction = on;
        self
    }

    /// Enables or disables compaction before the `Hack` arrives.
    pub fn early_compaction(mut self, on: bool) -> Self {
        self.early_compaction = on;
        self
    }

    /// Sets the header-flit insertion policy.
    pub fn insertion(mut self, policy: InsertionPolicy) -> Self {
        self.insertion = policy;
        self
    }

    /// Refuses header flits blocked at an intermediate INC for longer than
    /// `ticks` (an anti-deadlock extension; see [`RmbConfig::head_timeout`]).
    pub fn head_timeout(mut self, ticks: u64) -> Self {
        self.head_timeout = Some(ticks);
        self
    }

    /// Sets the data-flit acknowledgement mode.
    pub fn ack_mode(mut self, mode: AckMode) -> Self {
        self.ack_mode = mode;
        self
    }

    /// Sets the retry backoff after a `Nack`, in ticks.
    pub fn retry_backoff(mut self, ticks: u64) -> Self {
        self.node.retry_backoff = ticks;
        self
    }

    /// Sets how many concurrent sends each PE may have in flight.
    pub fn max_concurrent_sends(mut self, n: u32) -> Self {
        self.node.max_concurrent_sends = n;
        self
    }

    /// Sets how many concurrent receives each PE may accept.
    pub fn max_concurrent_receives(mut self, n: u32) -> Self {
        self.node.max_concurrent_receives = n;
        self
    }

    /// Finalises the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::RingTooSmall`] if fewer than two nodes were
    /// requested, [`ConfigError::NoBuses`] if `k == 0`, and
    /// [`ConfigError::NoSendSlots`] / [`ConfigError::NoReceiveSlots`] if a
    /// node limit is zero.
    pub fn build(self) -> Result<RmbConfig, ConfigError> {
        let nodes = RingSize::new(self.nodes).ok_or(ConfigError::RingTooSmall(self.nodes))?;
        if self.buses == 0 {
            return Err(ConfigError::NoBuses);
        }
        if self.node.max_concurrent_sends == 0 {
            return Err(ConfigError::NoSendSlots);
        }
        if self.node.max_concurrent_receives == 0 {
            return Err(ConfigError::NoReceiveSlots);
        }
        Ok(RmbConfig {
            nodes,
            buses: self.buses,
            compaction: self.compaction,
            early_compaction: self.early_compaction,
            insertion: self.insertion,
            head_timeout: self.head_timeout,
            ack_mode: self.ack_mode,
            node: self.node,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_paper_defaults() {
        let cfg = RmbConfig::new(16, 4).unwrap();
        assert!(cfg.compaction);
        assert!(cfg.early_compaction);
        assert_eq!(cfg.insertion, InsertionPolicy::TopBusOnly);
        assert_eq!(cfg.node.max_concurrent_sends, 1);
        assert_eq!(cfg.node.max_concurrent_receives, 1);
        assert_eq!(cfg.head_timeout, None);
        assert_eq!(cfg.top_bus(), BusIndex::new(3));
    }

    #[test]
    fn builder_rejects_degenerate_inputs() {
        assert!(matches!(
            RmbConfig::new(1, 4),
            Err(ConfigError::RingTooSmall(1))
        ));
        assert!(matches!(RmbConfig::new(8, 0), Err(ConfigError::NoBuses)));
        assert!(matches!(
            RmbConfig::builder(8, 2).max_concurrent_sends(0).build(),
            Err(ConfigError::NoSendSlots)
        ));
        assert!(matches!(
            RmbConfig::builder(8, 2).max_concurrent_receives(0).build(),
            Err(ConfigError::NoReceiveSlots)
        ));
    }

    #[test]
    fn builder_sets_all_knobs() {
        let cfg = RmbConfig::builder(8, 2)
            .compaction(false)
            .early_compaction(false)
            .insertion(InsertionPolicy::AnyFreeBus)
            .ack_mode(AckMode::Windowed { window: 4 })
            .head_timeout(99)
            .retry_backoff(17)
            .max_concurrent_sends(3)
            .max_concurrent_receives(2)
            .build()
            .unwrap();
        assert!(!cfg.compaction);
        assert!(!cfg.early_compaction);
        assert_eq!(cfg.insertion, InsertionPolicy::AnyFreeBus);
        assert_eq!(cfg.ack_mode, AckMode::Windowed { window: 4 });
        assert_eq!(cfg.head_timeout, Some(99));
        assert_eq!(cfg.node.retry_backoff, 17);
        assert_eq!(cfg.node.max_concurrent_sends, 3);
        assert_eq!(cfg.node.max_concurrent_receives, 2);
    }
}
