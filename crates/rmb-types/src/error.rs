//! Error types shared across the workspace.
//!
//! Both enums implement [`std::error::Error`] and a lowercase, period-free
//! [`Display`](std::fmt::Display) style so they compose cleanly under
//! `anyhow`-like wrappers ("while submitting: node n9 is outside the
//! ring"). [`ProtocolError`] variants carry structured context — the
//! request, hop and bus involved — so callers can react programmatically
//! instead of parsing messages.

use crate::hier::{HierLeg, NodeAddr};
use crate::ids::{BusIndex, NodeId, RequestId};
use std::error::Error;
use std::fmt;

/// Errors raised while validating a configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// The ring needs at least two nodes; got the stated count.
    RingTooSmall(u32),
    /// The multiple bus system needs at least one bus segment.
    NoBuses,
    /// `max_concurrent_sends` must be at least one.
    NoSendSlots,
    /// `max_concurrent_receives` must be at least one.
    NoReceiveSlots,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::RingTooSmall(n) => {
                write!(f, "ring needs at least 2 nodes, got {n}")
            }
            ConfigError::NoBuses => f.write_str("bus count k must be at least 1"),
            ConfigError::NoSendSlots => f.write_str("max_concurrent_sends must be at least 1"),
            ConfigError::NoReceiveSlots => {
                f.write_str("max_concurrent_receives must be at least 1")
            }
        }
    }
}

impl Error for ConfigError {}

/// Errors raised by protocol engines when asked to do something invalid.
///
/// Every variant is a struct with named fields; optional fields record
/// context the engine had at hand (which request was being served, at
/// which hop) without forcing every call site to fabricate it. Use the
/// constructor shorthands ([`ProtocolError::unknown_node`] and friends)
/// plus [`ProtocolError::with_request`] to build values tersely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProtocolError {
    /// A node identifier lies outside the ring.
    UnknownNode {
        /// The out-of-range node.
        node: NodeId,
        /// The request being validated, when one was already assigned.
        request: Option<RequestId>,
    },
    /// A bus index lies outside `0..k`.
    UnknownBus {
        /// The out-of-range bus.
        bus: BusIndex,
        /// The hop at which the index was presented, when known.
        hop: Option<NodeId>,
    },
    /// A request identifier is not live in the engine.
    UnknownRequest {
        /// The stale or foreign request.
        request: RequestId,
    },
    /// A message names the same node as source and destination; the ring
    /// RMB only carries traffic between distinct nodes.
    SelfMessage {
        /// The node talking to itself.
        node: NodeId,
        /// The request being validated, when one was already assigned.
        request: Option<RequestId>,
    },
    /// An operation would violate the single connection per port rule.
    PortBusy {
        /// Node whose port is busy.
        node: NodeId,
        /// The contended bus segment.
        bus: BusIndex,
        /// The request that lost the port, when known.
        request: Option<RequestId>,
    },
    /// A hierarchical endpoint lies outside the network's address space,
    /// or names a bridge position (bridges host no PE).
    UnknownAddress {
        /// The rejected address.
        addr: NodeAddr,
        /// The request being validated, when one was already assigned.
        request: Option<RequestId>,
    },
    /// One leg of a hierarchical route aborted permanently (its ring's
    /// retry budget was exhausted), taking the end-to-end message with it.
    LegAborted {
        /// Which leg of the route failed.
        leg: HierLeg,
        /// The local ring the leg ran on; `None` for the global ring.
        ring: Option<u32>,
        /// The end-to-end hierarchical request.
        request: RequestId,
    },
}

impl ProtocolError {
    /// A node outside the ring, with no request context yet.
    pub fn unknown_node(node: NodeId) -> Self {
        ProtocolError::UnknownNode { node, request: None }
    }

    /// A bus index outside the array, with no hop context yet.
    pub fn unknown_bus(bus: BusIndex) -> Self {
        ProtocolError::UnknownBus { bus, hop: None }
    }

    /// A request that is not live.
    pub fn unknown_request(request: RequestId) -> Self {
        ProtocolError::UnknownRequest { request }
    }

    /// A self-addressed message, with no request context yet.
    pub fn self_message(node: NodeId) -> Self {
        ProtocolError::SelfMessage { node, request: None }
    }

    /// A busy port, with no request context yet.
    pub fn port_busy(node: NodeId, bus: BusIndex) -> Self {
        ProtocolError::PortBusy {
            node,
            bus,
            request: None,
        }
    }

    /// A bad hierarchical endpoint, with no request context yet.
    pub fn unknown_address(addr: NodeAddr) -> Self {
        ProtocolError::UnknownAddress { addr, request: None }
    }

    /// A permanently failed leg of a hierarchical route.
    pub fn leg_aborted(leg: HierLeg, ring: Option<u32>, request: RequestId) -> Self {
        ProtocolError::LegAborted { leg, ring, request }
    }

    /// Attaches a request id to variants that can carry one; a no-op for
    /// the rest.
    #[must_use]
    pub fn with_request(mut self, id: RequestId) -> Self {
        match &mut self {
            ProtocolError::UnknownNode { request, .. }
            | ProtocolError::SelfMessage { request, .. }
            | ProtocolError::PortBusy { request, .. }
            | ProtocolError::UnknownAddress { request, .. } => *request = Some(id),
            ProtocolError::UnknownBus { .. }
            | ProtocolError::UnknownRequest { .. }
            | ProtocolError::LegAborted { .. } => {}
        }
        self
    }

    /// Attaches a hop to [`ProtocolError::UnknownBus`]; a no-op for the
    /// rest.
    #[must_use]
    pub fn at_hop(mut self, at: NodeId) -> Self {
        if let ProtocolError::UnknownBus { hop, .. } = &mut self {
            *hop = Some(at);
        }
        self
    }

    /// The request involved, when the variant recorded one.
    pub fn request(&self) -> Option<RequestId> {
        match self {
            ProtocolError::UnknownNode { request, .. }
            | ProtocolError::SelfMessage { request, .. }
            | ProtocolError::PortBusy { request, .. }
            | ProtocolError::UnknownAddress { request, .. } => *request,
            ProtocolError::UnknownRequest { request }
            | ProtocolError::LegAborted { request, .. } => Some(*request),
            ProtocolError::UnknownBus { .. } => None,
        }
    }

    /// The node involved, when the variant names one.
    pub fn node(&self) -> Option<NodeId> {
        match self {
            ProtocolError::UnknownNode { node, .. }
            | ProtocolError::SelfMessage { node, .. }
            | ProtocolError::PortBusy { node, .. } => Some(*node),
            ProtocolError::UnknownBus { hop, .. } => *hop,
            ProtocolError::UnknownAddress { addr, .. } => Some(addr.node),
            ProtocolError::UnknownRequest { .. } | ProtocolError::LegAborted { .. } => None,
        }
    }

    /// The failed hierarchical leg, for [`ProtocolError::LegAborted`].
    pub fn leg(&self) -> Option<HierLeg> {
        match self {
            ProtocolError::LegAborted { leg, .. } => Some(*leg),
            _ => None,
        }
    }

    /// The bus involved, when the variant names one.
    pub fn bus(&self) -> Option<BusIndex> {
        match self {
            ProtocolError::UnknownBus { bus, .. } | ProtocolError::PortBusy { bus, .. } => {
                Some(*bus)
            }
            _ => None,
        }
    }
}

/// Formats `" for r3"` when a request id is present, nothing otherwise.
struct ForRequest(Option<RequestId>);

impl fmt::Display for ForRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            Some(r) => write!(f, " for {r}"),
            None => Ok(()),
        }
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::UnknownNode { node, request } => {
                write!(f, "node {node} is outside the ring{}", ForRequest(*request))
            }
            ProtocolError::UnknownBus { bus, hop } => {
                write!(f, "bus {bus} is outside the bus array")?;
                if let Some(h) = hop {
                    write!(f, " at {h}")?;
                }
                Ok(())
            }
            ProtocolError::UnknownRequest { request } => {
                write!(f, "request {request} is not live")
            }
            ProtocolError::SelfMessage { node, request } => {
                write!(
                    f,
                    "message from {node} to itself is not routable{}",
                    ForRequest(*request)
                )
            }
            ProtocolError::PortBusy { node, bus, request } => {
                write!(
                    f,
                    "port for {bus} at {node} is already connected{}",
                    ForRequest(*request)
                )
            }
            ProtocolError::UnknownAddress { addr, request } => {
                write!(
                    f,
                    "address {addr} is outside the hierarchy or names a bridge{}",
                    ForRequest(*request)
                )
            }
            ProtocolError::LegAborted { leg, ring, request } => {
                write!(f, "{leg} leg")?;
                if let Some(r) = ring {
                    write!(f, " on ring {r}")?;
                }
                write!(f, " aborted for {request}")
            }
        }
    }
}

impl Error for ProtocolError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_messages_are_lowercase_and_informative() {
        let msgs = [
            ConfigError::RingTooSmall(1).to_string(),
            ConfigError::NoBuses.to_string(),
            ConfigError::NoSendSlots.to_string(),
            ConfigError::NoReceiveSlots.to_string(),
            ProtocolError::unknown_node(NodeId::new(9)).to_string(),
            ProtocolError::unknown_bus(BusIndex::new(9)).to_string(),
            ProtocolError::unknown_request(RequestId::new(9)).to_string(),
            ProtocolError::self_message(NodeId::new(1)).to_string(),
            ProtocolError::port_busy(NodeId::new(1), BusIndex::new(0)).to_string(),
            ProtocolError::port_busy(NodeId::new(1), BusIndex::new(0))
                .with_request(RequestId::new(4))
                .to_string(),
            ProtocolError::unknown_bus(BusIndex::new(7))
                .at_hop(NodeId::new(2))
                .to_string(),
            ProtocolError::unknown_address(NodeAddr::new(2, NodeId::new(0))).to_string(),
            ProtocolError::leg_aborted(HierLeg::Global, None, RequestId::new(7)).to_string(),
            ProtocolError::leg_aborted(HierLeg::SourceLocal, Some(3), RequestId::new(7))
                .to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(m.chars().next().unwrap().is_lowercase());
            assert!(!m.ends_with('.'));
        }
    }

    #[test]
    fn context_is_carried_and_queryable() {
        let e = ProtocolError::unknown_node(NodeId::new(9)).with_request(RequestId::new(3));
        assert_eq!(e.request(), Some(RequestId::new(3)));
        assert_eq!(e.node(), Some(NodeId::new(9)));
        assert_eq!(e.bus(), None);
        assert!(e.to_string().contains("r3"));

        let e = ProtocolError::port_busy(NodeId::new(1), BusIndex::new(2));
        assert_eq!(e.bus(), Some(BusIndex::new(2)));
        assert_eq!(e.request(), None);

        // `with_request` is a no-op for variants without a request slot.
        let e = ProtocolError::unknown_bus(BusIndex::new(5)).with_request(RequestId::new(1));
        assert_eq!(e.request(), None);

        let e = ProtocolError::leg_aborted(HierLeg::DestLocal, Some(1), RequestId::new(9));
        assert_eq!(e.leg(), Some(HierLeg::DestLocal));
        assert_eq!(e.request(), Some(RequestId::new(9)));
        assert!(e.to_string().contains("dest-local leg on ring 1"));

        let e = ProtocolError::unknown_address(NodeAddr::new(0, NodeId::new(3)));
        assert_eq!(e.node(), Some(NodeId::new(3)));
        assert_eq!(e.leg(), None);
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<ConfigError>();
        assert_err::<ProtocolError>();
        assert_err::<crate::fault::FaultPlanError>();
    }
}
