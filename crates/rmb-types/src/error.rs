//! Error types shared across the workspace.

use crate::ids::{BusIndex, NodeId, RequestId};
use std::error::Error;
use std::fmt;

/// Errors raised while validating a configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// The ring needs at least two nodes; got the stated count.
    RingTooSmall(u32),
    /// The multiple bus system needs at least one bus segment.
    NoBuses,
    /// `max_concurrent_sends` must be at least one.
    NoSendSlots,
    /// `max_concurrent_receives` must be at least one.
    NoReceiveSlots,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::RingTooSmall(n) => {
                write!(f, "ring needs at least 2 nodes, got {n}")
            }
            ConfigError::NoBuses => f.write_str("bus count k must be at least 1"),
            ConfigError::NoSendSlots => f.write_str("max_concurrent_sends must be at least 1"),
            ConfigError::NoReceiveSlots => {
                f.write_str("max_concurrent_receives must be at least 1")
            }
        }
    }
}

impl Error for ConfigError {}

/// Errors raised by protocol engines when asked to do something invalid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProtocolError {
    /// A node identifier lies outside the ring.
    UnknownNode(NodeId),
    /// A bus index lies outside `0..k`.
    UnknownBus(BusIndex),
    /// A request identifier is not live in the engine.
    UnknownRequest(RequestId),
    /// A message names the same node as source and destination; the ring
    /// RMB only carries traffic between distinct nodes.
    SelfMessage(NodeId),
    /// An operation would violate the single connection per port rule.
    PortBusy {
        /// Node whose port is busy.
        node: NodeId,
        /// The contended bus segment.
        bus: BusIndex,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::UnknownNode(n) => write!(f, "node {n} is outside the ring"),
            ProtocolError::UnknownBus(b) => write!(f, "bus {b} is outside the bus array"),
            ProtocolError::UnknownRequest(r) => write!(f, "request {r} is not live"),
            ProtocolError::SelfMessage(n) => {
                write!(f, "message from {n} to itself is not routable")
            }
            ProtocolError::PortBusy { node, bus } => {
                write!(f, "port for {bus} at {node} is already connected")
            }
        }
    }
}

impl Error for ProtocolError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_messages_are_lowercase_and_informative() {
        let msgs = [
            ConfigError::RingTooSmall(1).to_string(),
            ConfigError::NoBuses.to_string(),
            ConfigError::NoSendSlots.to_string(),
            ConfigError::NoReceiveSlots.to_string(),
            ProtocolError::UnknownNode(NodeId::new(9)).to_string(),
            ProtocolError::UnknownBus(BusIndex::new(9)).to_string(),
            ProtocolError::UnknownRequest(RequestId::new(9)).to_string(),
            ProtocolError::SelfMessage(NodeId::new(1)).to_string(),
            ProtocolError::PortBusy {
                node: NodeId::new(1),
                bus: BusIndex::new(0),
            }
            .to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(m.chars().next().unwrap().is_lowercase());
            assert!(!m.ends_with('.'));
        }
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<ConfigError>();
        assert_err::<ProtocolError>();
    }
}
