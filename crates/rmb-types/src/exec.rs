//! Execution-mode vocabulary for engines that can run their state machine
//! on more than one core, plus the wall-clock measurement record that
//! makes speedup a first-class experiment output.
//!
//! The types live here (not in the engine crates) because the experiment
//! layer needs to name them without depending on any particular engine:
//! `rmb-bench` threads an [`ExecMode`] from the CLI down to `rmb-hier`,
//! and every [`StatsReport`](crate::StatsReport) row can carry a
//! [`PerfStats`] regardless of which engine produced it.

/// How an engine advances its simulation clock.
///
/// The contract every engine offering this option must honour: **the mode
/// changes wall-clock time only**. Reports, delivery logs, trace events
/// and RNG draws are byte-identical across modes — `Serial` is the oracle
/// and `Sharded` must match it bit for bit (the scheduler-equivalence
/// suites enforce this).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecMode {
    /// Single-threaded reference engine: every shard advanced in index
    /// order on the calling thread.
    #[default]
    Serial,
    /// Conservative parallel engine: shards advance concurrently on a
    /// worker pool of the given size inside each synchronisation window.
    /// A count of 0 or 1 is accepted and behaves like a pool of one
    /// worker (useful for exercising the parallel code path
    /// deterministically under test).
    Sharded(usize),
}

impl ExecMode {
    /// Worker threads this mode uses (1 for `Serial`; at least 1 for
    /// `Sharded`).
    pub fn threads(self) -> usize {
        match self {
            ExecMode::Serial => 1,
            ExecMode::Sharded(n) => n.max(1),
        }
    }

    /// `true` when this mode runs on the shard pool.
    pub const fn is_sharded(self) -> bool {
        matches!(self, ExecMode::Sharded(_))
    }
}

impl std::fmt::Display for ExecMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecMode::Serial => write!(f, "serial"),
            ExecMode::Sharded(n) => write!(f, "sharded({})", n.max(&1)),
        }
    }
}

/// Wall-clock measurement of one run: how fast the simulation advanced in
/// host time.
///
/// This is *measurement metadata*, not simulation state — two runs of the
/// same workload on hosts of different speeds produce different
/// `PerfStats` but identical simulation results. Report types therefore
/// exclude it from their equality comparisons (a `HierReport` from a
/// sharded run must compare equal to the serial oracle's even though
/// their wall clocks differ).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfStats {
    /// Wall-clock milliseconds the run took.
    pub wall_ms: f64,
    /// Simulated ticks per wall-clock second.
    pub sim_ticks_per_sec: f64,
    /// Worker threads the engine ran on.
    pub threads: u32,
}

impl PerfStats {
    /// Builds the record from a tick count and an elapsed wall duration.
    /// A zero elapsed time (sub-resolution run) reports a rate of 0.0
    /// rather than infinity so JSON stays finite.
    pub fn measure(ticks: u64, elapsed: std::time::Duration, threads: usize) -> Self {
        let secs = elapsed.as_secs_f64();
        PerfStats {
            wall_ms: secs * 1_000.0,
            sim_ticks_per_sec: if secs > 0.0 { ticks as f64 / secs } else { 0.0 },
            threads: threads.min(u32::MAX as usize) as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn exec_mode_thread_counts() {
        assert_eq!(ExecMode::Serial.threads(), 1);
        assert_eq!(ExecMode::Sharded(4).threads(), 4);
        assert_eq!(ExecMode::Sharded(0).threads(), 1, "clamped to one worker");
        assert!(!ExecMode::Serial.is_sharded());
        assert!(ExecMode::Sharded(2).is_sharded());
        assert_eq!(ExecMode::default(), ExecMode::Serial);
        assert_eq!(ExecMode::Sharded(8).to_string(), "sharded(8)");
        assert_eq!(ExecMode::Serial.to_string(), "serial");
    }

    #[test]
    fn perf_stats_measure() {
        let p = PerfStats::measure(1_000_000, Duration::from_millis(500), 4);
        assert!((p.wall_ms - 500.0).abs() < 1e-9);
        assert!((p.sim_ticks_per_sec - 2_000_000.0).abs() < 1.0);
        assert_eq!(p.threads, 4);
        let z = PerfStats::measure(10, Duration::ZERO, 1);
        assert_eq!(z.sim_ticks_per_sec, 0.0, "zero elapsed must stay finite");
    }
}
