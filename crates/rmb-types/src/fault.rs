//! Deterministic fault schedules for the reconfigurable network.
//!
//! The paper's central claim (§2.4) is that the RMB stays live because
//! virtual buses migrate via make-before-break compaction. Exercising the
//! "reconfigurable" half of the title requires breaking things: this module
//! defines a [`FaultPlan`] — a deterministic, pre-computed schedule of
//! segment, link and INC failures (with optional repair times) that a
//! simulator replays tick by tick. Keeping the schedule as plain data (built
//! up front, typically from a seeded RNG) preserves the property that a
//! simulation run is a pure function of its inputs.
//!
//! # Examples
//!
//! ```
//! use rmb_types::{BusIndex, FaultKind, FaultPlan, NodeId};
//!
//! let plan = FaultPlan::new()
//!     .segment_stuck(100, NodeId::new(3), BusIndex::new(1), Some(400))
//!     .link_cut(250, NodeId::new(5), None)
//!     .inc_dead(300, NodeId::new(7), Some(900));
//! assert_eq!(plan.events().len(), 3);
//! assert!(plan.validate(16, 4).is_ok());
//! ```

use crate::ids::{BusIndex, NodeId};
use std::error::Error;
use std::fmt;

/// What breaks.
///
/// A *segment* is one of the `k` parallel bus segments between adjacent
/// INCs; `hop` names the upstream node of the segment (the INC that drives
/// it), matching the segment-table convention used by the simulators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// One bus segment sticks: no header may extend over it and no virtual
    /// bus may migrate onto it until repair.
    SegmentStuck {
        /// Upstream node of the faulted segment.
        hop: NodeId,
        /// Which of the `k` parallel segments at that hop.
        bus: BusIndex,
    },
    /// The whole link between `hop` and its successor is cut: all `k`
    /// segments at that hop fault together.
    LinkCut {
        /// Upstream node of the cut link.
        hop: NodeId,
    },
    /// The INC at `node` dies: it can neither inject, accept, nor drive its
    /// outgoing segments, so every segment at `hop = node` faults and every
    /// circuit terminating at the node is torn down.
    IncDead {
        /// The node whose INC fails.
        node: NodeId,
    },
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::SegmentStuck { hop, bus } => write!(f, "segment-stuck {hop} {bus}"),
            FaultKind::LinkCut { hop } => write!(f, "link-cut {hop}"),
            FaultKind::IncDead { node } => write!(f, "inc-dead {node}"),
        }
    }
}

/// One scheduled failure, with an optional repair time.
///
/// `repair_at == None` means the fault is permanent for the rest of the
/// run. When present, `repair_at` must be strictly after `at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Tick at which the fault activates.
    pub at: u64,
    /// What fails.
    pub kind: FaultKind,
    /// Tick at which the fault heals, or `None` for a permanent fault.
    pub repair_at: Option<u64>,
}

/// A deterministic schedule of fault events.
///
/// Events are kept sorted by activation tick (ties preserve insertion
/// order), so replaying the plan is independent of construction order.
/// Overlapping faults on the same resource are legal: a resource is faulty
/// while *any* covering fault is active.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Creates an empty plan (no faults — the happy path).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds an event, keeping the schedule sorted by activation tick.
    pub fn push(&mut self, event: FaultEvent) {
        let pos = self.events.partition_point(|e| e.at <= event.at);
        self.events.insert(pos, event);
    }

    /// Adds an event, builder style.
    #[must_use]
    pub fn with(mut self, event: FaultEvent) -> Self {
        self.push(event);
        self
    }

    /// Schedules a single stuck segment.
    #[must_use]
    pub fn segment_stuck(self, at: u64, hop: NodeId, bus: BusIndex, repair_at: Option<u64>) -> Self {
        self.with(FaultEvent {
            at,
            kind: FaultKind::SegmentStuck { hop, bus },
            repair_at,
        })
    }

    /// Schedules a cut of the whole link at `hop`.
    #[must_use]
    pub fn link_cut(self, at: u64, hop: NodeId, repair_at: Option<u64>) -> Self {
        self.with(FaultEvent {
            at,
            kind: FaultKind::LinkCut { hop },
            repair_at,
        })
    }

    /// Schedules the death of the INC at `node`.
    #[must_use]
    pub fn inc_dead(self, at: u64, node: NodeId, repair_at: Option<u64>) -> Self {
        self.with(FaultEvent {
            at,
            kind: FaultKind::IncDead { node },
            repair_at,
        })
    }

    /// The scheduled events, sorted by activation tick.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Checks every event against ring dimensions: node and hop indices
    /// must lie in `0..n`, bus indices in `0..k`, and repairs must come
    /// strictly after activation.
    pub fn validate(&self, n: u32, k: u16) -> Result<(), FaultPlanError> {
        for (i, event) in self.events.iter().enumerate() {
            if let Some(repair) = event.repair_at {
                if repair <= event.at {
                    return Err(FaultPlanError::RepairNotAfterFault { index: i });
                }
            }
            match event.kind {
                FaultKind::SegmentStuck { hop, bus } => {
                    if hop.index() >= n {
                        return Err(FaultPlanError::NodeOutOfRange { index: i, node: hop });
                    }
                    if bus.index() >= k {
                        return Err(FaultPlanError::BusOutOfRange { index: i, bus });
                    }
                }
                FaultKind::LinkCut { hop } => {
                    if hop.index() >= n {
                        return Err(FaultPlanError::NodeOutOfRange { index: i, node: hop });
                    }
                }
                FaultKind::IncDead { node } => {
                    if node.index() >= n {
                        return Err(FaultPlanError::NodeOutOfRange { index: i, node });
                    }
                }
            }
        }
        Ok(())
    }
}

/// A fault plan that does not fit the ring it was given to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultPlanError {
    /// An event names a node outside `0..n`.
    NodeOutOfRange {
        /// Position of the offending event in the sorted schedule.
        index: usize,
        /// The out-of-range node.
        node: NodeId,
    },
    /// An event names a bus outside `0..k`.
    BusOutOfRange {
        /// Position of the offending event in the sorted schedule.
        index: usize,
        /// The out-of-range bus.
        bus: BusIndex,
    },
    /// An event's repair tick is not strictly after its activation tick.
    RepairNotAfterFault {
        /// Position of the offending event in the sorted schedule.
        index: usize,
    },
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPlanError::NodeOutOfRange { index, node } => {
                write!(f, "fault event {index} names {node}, which is outside the ring")
            }
            FaultPlanError::BusOutOfRange { index, bus } => {
                write!(f, "fault event {index} names {bus}, which is outside the bus array")
            }
            FaultPlanError::RepairNotAfterFault { index } => {
                write!(f, "fault event {index} repairs no later than it activates")
            }
        }
    }
}

impl Error for FaultPlanError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_sort_by_activation_tick() {
        let plan = FaultPlan::new()
            .link_cut(50, NodeId::new(1), None)
            .segment_stuck(10, NodeId::new(0), BusIndex::new(0), Some(20))
            .inc_dead(30, NodeId::new(2), None);
        let ticks: Vec<u64> = plan.events().iter().map(|e| e.at).collect();
        assert_eq!(ticks, vec![10, 30, 50]);
    }

    #[test]
    fn ties_preserve_insertion_order() {
        let plan = FaultPlan::new()
            .segment_stuck(5, NodeId::new(0), BusIndex::new(0), None)
            .segment_stuck(5, NodeId::new(1), BusIndex::new(1), None);
        match plan.events()[0].kind {
            FaultKind::SegmentStuck { hop, .. } => assert_eq!(hop, NodeId::new(0)),
            _ => panic!("wrong kind"),
        }
    }

    #[test]
    fn validate_rejects_out_of_range_and_bad_repairs() {
        let bad_node = FaultPlan::new().inc_dead(0, NodeId::new(8), None);
        assert!(matches!(
            bad_node.validate(8, 2),
            Err(FaultPlanError::NodeOutOfRange { .. })
        ));
        let bad_bus = FaultPlan::new().segment_stuck(0, NodeId::new(0), BusIndex::new(2), None);
        assert!(matches!(
            bad_bus.validate(8, 2),
            Err(FaultPlanError::BusOutOfRange { .. })
        ));
        let bad_repair = FaultPlan::new().link_cut(10, NodeId::new(0), Some(10));
        assert!(matches!(
            bad_repair.validate(8, 2),
            Err(FaultPlanError::RepairNotAfterFault { .. })
        ));
        let ok = FaultPlan::new().link_cut(10, NodeId::new(0), Some(11));
        assert!(ok.validate(8, 2).is_ok());
    }

    #[test]
    fn empty_plan_is_empty_and_valid() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert!(plan.validate(2, 1).is_ok());
    }

    #[test]
    fn display_is_compact() {
        let kind = FaultKind::SegmentStuck {
            hop: NodeId::new(3),
            bus: BusIndex::new(1),
        };
        assert_eq!(kind.to_string(), "segment-stuck n3 b1");
        assert_eq!(FaultKind::LinkCut { hop: NodeId::new(5) }.to_string(), "link-cut n5");
        assert_eq!(FaultKind::IncDead { node: NodeId::new(7) }.to_string(), "inc-dead n7");
    }

    #[test]
    fn plan_error_messages_are_lowercase() {
        let msgs = [
            FaultPlanError::NodeOutOfRange {
                index: 0,
                node: NodeId::new(9),
            }
            .to_string(),
            FaultPlanError::BusOutOfRange {
                index: 1,
                bus: BusIndex::new(9),
            }
            .to_string(),
            FaultPlanError::RepairNotAfterFault { index: 2 }.to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(m.chars().next().unwrap().is_lowercase());
            assert!(!m.ends_with('.'));
        }
    }
}
