//! Flits (flow-control digits) and acknowledgement signals.
//!
//! The RMB moves messages with a mechanism based on wormhole routing
//! (§1, §2.2): a message is decomposed into a single *header flit* which
//! carries the destination and sets up the channel, a number of *data
//! flits*, and a terminating *final flit*. Four acknowledgement kinds flow
//! counter-clockwise on the same virtual bus: `Hack`, `Dack`, `Fack` and
//! `Nack`.

use crate::ids::{NodeId, RequestId};
use std::fmt;

/// Payload word carried by a data flit.
///
/// The paper leaves flit width as an implementation parameter; we model a
/// flit payload as a 64-bit word, which is wide enough to carry the test
/// patterns used by the integrity checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct FlitPayload(pub u64);

impl fmt::Display for FlitPayload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// One flit travelling clockwise on a virtual bus.
///
/// # Examples
///
/// ```
/// use rmb_types::{Flit, FlitKind, NodeId, RequestId};
/// let hf = Flit::header(RequestId::new(1), NodeId::new(0), NodeId::new(5));
/// assert_eq!(hf.kind(), FlitKind::Header);
/// assert_eq!(hf.request(), RequestId::new(1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Flit {
    /// Header flit (HF): carries the destination address and draws the
    /// virtual bus behind it as it advances.
    Header {
        /// The request this flit belongs to.
        request: RequestId,
        /// Originating node.
        source: NodeId,
        /// Destination node.
        destination: NodeId,
    },
    /// Data flit (DF): one payload word. Data flits are transmitted only
    /// after the `Hack` for the header has been received, so they are never
    /// buffered at intermediate nodes (§2.2).
    Data {
        /// The request this flit belongs to.
        request: RequestId,
        /// Zero-based position of this flit within the message body.
        sequence: u32,
        /// The payload word.
        payload: FlitPayload,
    },
    /// Final flit (FF): sent by the initiating PE to terminate the request.
    Final {
        /// The request this flit belongs to.
        request: RequestId,
    },
}

impl Flit {
    /// Creates a header flit.
    pub const fn header(request: RequestId, source: NodeId, destination: NodeId) -> Self {
        Flit::Header {
            request,
            source,
            destination,
        }
    }

    /// Creates a data flit.
    pub const fn data(request: RequestId, sequence: u32, payload: FlitPayload) -> Self {
        Flit::Data {
            request,
            sequence,
            payload,
        }
    }

    /// Creates a final flit.
    pub const fn final_flit(request: RequestId) -> Self {
        Flit::Final { request }
    }

    /// The request this flit belongs to.
    pub const fn request(&self) -> RequestId {
        match *self {
            Flit::Header { request, .. }
            | Flit::Data { request, .. }
            | Flit::Final { request } => request,
        }
    }

    /// Discriminant of this flit, without its payload.
    pub const fn kind(&self) -> FlitKind {
        match self {
            Flit::Header { .. } => FlitKind::Header,
            Flit::Data { .. } => FlitKind::Data,
            Flit::Final { .. } => FlitKind::Final,
        }
    }
}

impl fmt::Display for Flit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Flit::Header {
                request,
                source,
                destination,
            } => write!(f, "HF({request} {source}->{destination})"),
            Flit::Data {
                request, sequence, ..
            } => write!(f, "DF({request}#{sequence})"),
            Flit::Final { request } => write!(f, "FF({request})"),
        }
    }
}

/// Flit discriminants: header, data, final.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlitKind {
    /// Header flit.
    Header,
    /// Data flit.
    Data,
    /// Final flit.
    Final,
}

impl fmt::Display for FlitKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FlitKind::Header => "HF",
            FlitKind::Data => "DF",
            FlitKind::Final => "FF",
        };
        f.write_str(s)
    }
}

/// An acknowledgement signal travelling counter-clockwise on a virtual bus.
///
/// The paper associates four acknowledgement kinds with a request (§2.2):
///
/// * `Hack` — header acknowledgement; permits data flits to be transmitted.
/// * `Dack` — data acknowledgement; continuation / flow control.
/// * `Fack` — final acknowledgement; removes the virtual bus from the RMB.
///   Every intermediate INC it passes frees the ports used by the
///   connection.
/// * `Nack` — negative acknowledgement; refuses a request and releases the
///   virtual bus associated with it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ack {
    /// Header acknowledgement.
    Hack {
        /// The request being acknowledged.
        request: RequestId,
    },
    /// Data-flit acknowledgement (carries the sequence number it covers).
    Dack {
        /// The request being acknowledged.
        request: RequestId,
        /// Highest data-flit sequence number received so far.
        sequence: u32,
    },
    /// Final-flit acknowledgement: tears the virtual bus down behind it.
    Fack {
        /// The request being acknowledged.
        request: RequestId,
    },
    /// Negative acknowledgement: the destination refused the request.
    Nack {
        /// The refused request.
        request: RequestId,
    },
}

impl Ack {
    /// The request this acknowledgement refers to.
    pub const fn request(&self) -> RequestId {
        match *self {
            Ack::Hack { request }
            | Ack::Dack { request, .. }
            | Ack::Fack { request }
            | Ack::Nack { request } => request,
        }
    }

    /// Discriminant of this acknowledgement.
    pub const fn kind(&self) -> AckKind {
        match self {
            Ack::Hack { .. } => AckKind::Hack,
            Ack::Dack { .. } => AckKind::Dack,
            Ack::Fack { .. } => AckKind::Fack,
            Ack::Nack { .. } => AckKind::Nack,
        }
    }

    /// `true` for the two acknowledgements that end a circuit (`Fack`,
    /// `Nack`), i.e. those whose backward passage releases bus segments.
    pub const fn releases_bus(&self) -> bool {
        matches!(self, Ack::Fack { .. } | Ack::Nack { .. })
    }
}

impl fmt::Display for Ack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ack::Hack { request } => write!(f, "Hack({request})"),
            Ack::Dack { request, sequence } => write!(f, "Dack({request}#{sequence})"),
            Ack::Fack { request } => write!(f, "Fack({request})"),
            Ack::Nack { request } => write!(f, "Nack({request})"),
        }
    }
}

/// Acknowledgement discriminants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AckKind {
    /// Header acknowledgement.
    Hack,
    /// Data acknowledgement.
    Dack,
    /// Final acknowledgement.
    Fack,
    /// Negative acknowledgement.
    Nack,
}

impl fmt::Display for AckKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AckKind::Hack => "Hack",
            AckKind::Dack => "Dack",
            AckKind::Fack => "Fack",
            AckKind::Nack => "Nack",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flit_accessors() {
        let r = RequestId::new(42);
        let hf = Flit::header(r, NodeId::new(1), NodeId::new(2));
        assert_eq!(hf.request(), r);
        assert_eq!(hf.kind(), FlitKind::Header);
        let df = Flit::data(r, 7, FlitPayload(0xdead));
        assert_eq!(df.kind(), FlitKind::Data);
        assert_eq!(df.request(), r);
        let ff = Flit::final_flit(r);
        assert_eq!(ff.kind(), FlitKind::Final);
        assert_eq!(ff.request(), r);
    }

    #[test]
    fn ack_accessors_and_release_semantics() {
        let r = RequestId::new(3);
        assert_eq!(Ack::Hack { request: r }.kind(), AckKind::Hack);
        assert_eq!(
            Ack::Dack {
                request: r,
                sequence: 9
            }
            .request(),
            r
        );
        assert!(!Ack::Hack { request: r }.releases_bus());
        assert!(!Ack::Dack {
            request: r,
            sequence: 0
        }
        .releases_bus());
        assert!(Ack::Fack { request: r }.releases_bus());
        assert!(Ack::Nack { request: r }.releases_bus());
    }

    #[test]
    fn display_forms() {
        let r = RequestId::new(5);
        let hf = Flit::header(r, NodeId::new(0), NodeId::new(4));
        assert_eq!(hf.to_string(), "HF(r5 n0->n4)");
        assert_eq!(Flit::data(r, 2, FlitPayload(1)).to_string(), "DF(r5#2)");
        assert_eq!(Flit::final_flit(r).to_string(), "FF(r5)");
        assert_eq!(Ack::Nack { request: r }.to_string(), "Nack(r5)");
        assert_eq!(FlitKind::Header.to_string(), "HF");
        assert_eq!(AckKind::Fack.to_string(), "Fack");
    }
}
