//! Hierarchical (multi-ring) addressing and configuration.
//!
//! A single RMB ring saturates once concurrent circuits exceed its `k`
//! segments per hop. The scale-out move is composition: several *local*
//! RMB rings joined to one *global* RMB ring through bridge INCs. A
//! bridge occupies one node position on its local ring and one on the
//! global ring; inter-ring messages route source-ring → bridge → global
//! ring → bridge → destination-ring as chained circuit set-ups.
//!
//! This module holds the vocabulary for that composition — the
//! two-level [`NodeAddr`], the [`HierMessageSpec`] fed to hierarchical
//! simulators, the [`HierLeg`] names used in error reporting, and the
//! validated [`HierConfig`]. The executable model lives in the
//! `rmb-hier` crate.
//!
//! # Examples
//!
//! ```
//! use rmb_types::{HierConfig, NodeAddr, NodeId};
//!
//! let cfg = HierConfig::builder(4, 16, 4).build()?;
//! assert_eq!(cfg.total_nodes(), 64);
//! assert_eq!(cfg.compute_nodes(), 60); // one bridge per local ring
//! let a = NodeAddr::new(2, NodeId::new(5));
//! assert!(cfg.contains(a));
//! assert!(!cfg.is_bridge(a));
//! # Ok::<(), rmb_types::HierConfigError>(())
//! ```

use crate::config::RmbConfig;
use crate::ids::NodeId;
use std::error::Error;
use std::fmt;

/// A node position in a hierarchical multi-ring RMB: which local ring,
/// and which position on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeAddr {
    /// Index of the local ring, `0..rings`.
    pub ring: u32,
    /// Position on that local ring.
    pub node: NodeId,
}

impl NodeAddr {
    /// Creates an address from a ring index and a ring position.
    pub const fn new(ring: u32, node: NodeId) -> Self {
        NodeAddr { ring, node }
    }
}

impl fmt::Display for NodeAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}.{}", self.ring, self.node)
    }
}

/// A message between two hierarchical addresses — the multi-ring
/// counterpart of [`MessageSpec`](crate::MessageSpec).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HierMessageSpec {
    /// Originating address. Must not name a bridge position.
    pub source: NodeAddr,
    /// Destination address. Must differ from `source` and must not name
    /// a bridge position.
    pub destination: NodeAddr,
    /// Number of data flits in the message body.
    pub data_flits: u32,
    /// Tick at which the source PE first asks for a connection.
    pub inject_at: u64,
}

impl HierMessageSpec {
    /// Creates a message injected at tick 0.
    pub const fn new(source: NodeAddr, destination: NodeAddr, data_flits: u32) -> Self {
        HierMessageSpec {
            source,
            destination,
            data_flits,
            inject_at: 0,
        }
    }

    /// Returns a copy scheduled for injection at `tick`.
    pub const fn at(mut self, tick: u64) -> Self {
        self.inject_at = tick;
        self
    }

    /// `true` when source and destination share a local ring (no bridge
    /// or global-ring hop involved).
    pub const fn is_intra_ring(&self) -> bool {
        self.source.ring == self.destination.ring
    }
}

impl fmt::Display for HierMessageSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}->{} ({} DFs @t{})",
            self.source, self.destination, self.data_flits, self.inject_at
        )
    }
}

/// One leg of a hierarchical route, named in error reports so a failure
/// can be located ("the global leg of r7 aborted").
///
/// An intra-ring message has a single [`SourceLocal`](HierLeg::SourceLocal)
/// leg; an inter-ring message chains all three.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HierLeg {
    /// Source node to its local ring's bridge (or, for intra-ring
    /// traffic, straight to the destination).
    SourceLocal,
    /// Source bridge to destination bridge across the global ring.
    Global,
    /// Destination ring's bridge to the destination node.
    DestLocal,
}

impl fmt::Display for HierLeg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            HierLeg::SourceLocal => "source-local",
            HierLeg::Global => "global",
            HierLeg::DestLocal => "dest-local",
        };
        f.write_str(s)
    }
}

/// Errors raised while validating a hierarchical configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum HierConfigError {
    /// A hierarchy needs at least two local rings.
    TooFewRings(u32),
    /// The global ring's node count must equal the number of local rings
    /// (one bridge per local ring).
    GlobalSizeMismatch {
        /// Number of local rings requested.
        rings: u32,
        /// Node count of the supplied global ring configuration.
        global_nodes: u32,
    },
    /// The bridge position lies outside the local ring.
    BridgeOutsideRing {
        /// The out-of-range bridge position.
        bridge: NodeId,
        /// Local ring size.
        nodes: u32,
    },
    /// The bridge queue needs at least one slot.
    ZeroQueueDepth,
    /// An underlying ring configuration was invalid.
    Ring(crate::ConfigError),
}

impl fmt::Display for HierConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HierConfigError::TooFewRings(r) => {
                write!(f, "a hierarchy needs at least 2 local rings, got {r}")
            }
            HierConfigError::GlobalSizeMismatch { rings, global_nodes } => write!(
                f,
                "global ring has {global_nodes} nodes but there are {rings} local rings"
            ),
            HierConfigError::BridgeOutsideRing { bridge, nodes } => write!(
                f,
                "bridge position {bridge} is outside the {nodes}-node local ring"
            ),
            HierConfigError::ZeroQueueDepth => {
                f.write_str("bridge queue depth must be at least 1")
            }
            HierConfigError::Ring(e) => write!(f, "invalid ring configuration: {e}"),
        }
    }
}

impl Error for HierConfigError {}

impl From<crate::ConfigError> for HierConfigError {
    fn from(e: crate::ConfigError) -> Self {
        HierConfigError::Ring(e)
    }
}

/// Validated static configuration of a hierarchical multi-ring RMB:
/// `rings` identical local rings, one global ring of `rings` bridge
/// nodes, and the bridge parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HierConfig {
    rings: u32,
    local: RmbConfig,
    global: RmbConfig,
    bridge: NodeId,
    bridge_queue_depth: u32,
    bridge_backoff: u64,
}

impl HierConfig {
    /// Starts building a hierarchy of `rings` local rings, each with
    /// `nodes_per_ring` nodes and `buses` segments per hop (the global
    /// ring defaults to the same `k`).
    pub fn builder(rings: u32, nodes_per_ring: u32, buses: u16) -> HierConfigBuilder {
        HierConfigBuilder {
            rings,
            local_nodes: nodes_per_ring,
            local_buses: buses,
            global_buses: buses,
            bridge: NodeId::new(0),
            bridge_queue_depth: 4,
            bridge_backoff: 8,
            head_timeout: None,
            retry_backoff: None,
        }
    }

    /// Validates and assembles a configuration from explicit ring
    /// configurations.
    ///
    /// # Errors
    ///
    /// Returns [`HierConfigError`] when fewer than two rings are
    /// requested, the global ring size differs from the ring count, the
    /// bridge position is outside the local ring, or the queue depth is
    /// zero.
    pub fn new(
        rings: u32,
        local: RmbConfig,
        global: RmbConfig,
        bridge: NodeId,
        bridge_queue_depth: u32,
        bridge_backoff: u64,
    ) -> Result<Self, HierConfigError> {
        if rings < 2 {
            return Err(HierConfigError::TooFewRings(rings));
        }
        if global.nodes().get() != rings {
            return Err(HierConfigError::GlobalSizeMismatch {
                rings,
                global_nodes: global.nodes().get(),
            });
        }
        if !local.nodes().contains(bridge) {
            return Err(HierConfigError::BridgeOutsideRing {
                bridge,
                nodes: local.nodes().get(),
            });
        }
        if bridge_queue_depth == 0 {
            return Err(HierConfigError::ZeroQueueDepth);
        }
        Ok(HierConfig {
            rings,
            local,
            global,
            bridge,
            bridge_queue_depth,
            bridge_backoff: bridge_backoff.max(1),
        })
    }

    /// Number of local rings (also the global ring's node count).
    pub const fn rings(&self) -> u32 {
        self.rings
    }

    /// Configuration of every local ring.
    pub const fn local(&self) -> &RmbConfig {
        &self.local
    }

    /// Configuration of the global ring.
    pub const fn global(&self) -> &RmbConfig {
        &self.global
    }

    /// Position of the bridge INC on each local ring.
    pub const fn bridge(&self) -> NodeId {
        self.bridge
    }

    /// Bound on messages a bridge may hold (queued plus in transit to or
    /// from it) — the only buffering point of the composition.
    pub const fn bridge_queue_depth(&self) -> u32 {
        self.bridge_queue_depth
    }

    /// Base backoff, in ticks, after a bridge-queue refusal (grows
    /// linearly with the refusal count, like the core contention path).
    pub const fn bridge_backoff(&self) -> u64 {
        self.bridge_backoff
    }

    /// Total node positions: `rings × nodes_per_ring` (bridges included).
    pub fn total_nodes(&self) -> u32 {
        self.rings * self.local.nodes().get()
    }

    /// Node positions that host a PE: bridges carry no compute.
    pub fn compute_nodes(&self) -> u32 {
        self.rings * (self.local.nodes().get() - 1)
    }

    /// `true` when `addr` is a valid position in this hierarchy.
    pub fn contains(&self, addr: NodeAddr) -> bool {
        addr.ring < self.rings && self.local.nodes().contains(addr.node)
    }

    /// `true` when `addr` names a bridge position (no PE there).
    pub fn is_bridge(&self, addr: NodeAddr) -> bool {
        addr.node == self.bridge
    }

    /// Maps an address onto the equal-node-count flat ring used by the
    /// `hier_scaling` comparison: ring-major order.
    pub fn flatten(&self, addr: NodeAddr) -> NodeId {
        NodeId::new(addr.ring * self.local.nodes().get() + addr.node.index())
    }
}

/// Builder for [`HierConfig`] (see [`HierConfig::builder`]).
#[derive(Debug, Clone)]
pub struct HierConfigBuilder {
    rings: u32,
    local_nodes: u32,
    local_buses: u16,
    global_buses: u16,
    bridge: NodeId,
    bridge_queue_depth: u32,
    bridge_backoff: u64,
    head_timeout: Option<u64>,
    retry_backoff: Option<u64>,
}

impl HierConfigBuilder {
    /// Sets the number of buses on the global ring (defaults to the
    /// local `k`).
    #[must_use]
    pub fn global_buses(mut self, k: u16) -> Self {
        self.global_buses = k;
        self
    }

    /// Places the bridge INC at `node` on every local ring (default 0).
    #[must_use]
    pub fn bridge(mut self, node: NodeId) -> Self {
        self.bridge = node;
        self
    }

    /// Bounds each bridge's buffering (default 4 slots).
    #[must_use]
    pub fn bridge_queue_depth(mut self, depth: u32) -> Self {
        self.bridge_queue_depth = depth;
        self
    }

    /// Sets the base backoff after a bridge-queue refusal (default 8).
    #[must_use]
    pub fn bridge_backoff(mut self, ticks: u64) -> Self {
        self.bridge_backoff = ticks;
        self
    }

    /// Applies a head timeout to every ring (local and global) — the
    /// anti-deadlock extension of [`RmbConfig::head_timeout`].
    #[must_use]
    pub fn head_timeout(mut self, ticks: u64) -> Self {
        self.head_timeout = Some(ticks);
        self
    }

    /// Sets the per-ring retry backoff after a `Nack`.
    #[must_use]
    pub fn retry_backoff(mut self, ticks: u64) -> Self {
        self.retry_backoff = Some(ticks);
        self
    }

    /// Finalises the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`HierConfigError`] under the same conditions as
    /// [`HierConfig::new`], or when an underlying ring configuration is
    /// itself invalid.
    pub fn build(self) -> Result<HierConfig, HierConfigError> {
        let mut local = RmbConfig::builder(self.local_nodes, self.local_buses);
        let mut global = RmbConfig::builder(self.rings.max(2), self.global_buses);
        if let Some(t) = self.head_timeout {
            local = local.head_timeout(t);
            global = global.head_timeout(t);
        }
        if let Some(b) = self.retry_backoff {
            local = local.retry_backoff(b);
            global = global.retry_backoff(b);
        }
        HierConfig::new(
            self.rings,
            local.build()?,
            global.build()?,
            self.bridge,
            self.bridge_queue_depth,
            self.bridge_backoff,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_display_and_spec_builders() {
        let a = NodeAddr::new(1, NodeId::new(4));
        let b = NodeAddr::new(3, NodeId::new(2));
        assert_eq!(a.to_string(), "r1.n4");
        let m = HierMessageSpec::new(a, b, 8).at(7);
        assert_eq!(m.inject_at, 7);
        assert!(!m.is_intra_ring());
        assert!(HierMessageSpec::new(a, NodeAddr::new(1, NodeId::new(9)), 1).is_intra_ring());
        assert_eq!(m.to_string(), "r1.n4->r3.n2 (8 DFs @t7)");
    }

    #[test]
    fn builder_defaults_validate() {
        let cfg = HierConfig::builder(4, 16, 4).build().unwrap();
        assert_eq!(cfg.rings(), 4);
        assert_eq!(cfg.local().nodes().get(), 16);
        assert_eq!(cfg.global().nodes().get(), 4);
        assert_eq!(cfg.global().buses(), 4);
        assert_eq!(cfg.bridge(), NodeId::new(0));
        assert_eq!(cfg.bridge_queue_depth(), 4);
        assert_eq!(cfg.total_nodes(), 64);
        assert_eq!(cfg.compute_nodes(), 60);
        assert!(cfg.is_bridge(NodeAddr::new(2, NodeId::new(0))));
        assert!(!cfg.contains(NodeAddr::new(4, NodeId::new(0))));
        assert!(!cfg.contains(NodeAddr::new(0, NodeId::new(16))));
    }

    #[test]
    fn builder_knobs_propagate() {
        let cfg = HierConfig::builder(2, 8, 2)
            .global_buses(3)
            .bridge(NodeId::new(7))
            .bridge_queue_depth(1)
            .bridge_backoff(16)
            .head_timeout(99)
            .retry_backoff(5)
            .build()
            .unwrap();
        assert_eq!(cfg.global().buses(), 3);
        assert_eq!(cfg.bridge(), NodeId::new(7));
        assert_eq!(cfg.bridge_queue_depth(), 1);
        assert_eq!(cfg.bridge_backoff(), 16);
        assert_eq!(cfg.local().head_timeout, Some(99));
        assert_eq!(cfg.global().head_timeout, Some(99));
        assert_eq!(cfg.local().node.retry_backoff, 5);
    }

    #[test]
    fn validation_rejects_degenerate_hierarchies() {
        assert!(matches!(
            HierConfig::builder(1, 8, 2).build(),
            Err(HierConfigError::TooFewRings(1))
        ));
        assert!(matches!(
            HierConfig::builder(4, 8, 2).bridge(NodeId::new(8)).build(),
            Err(HierConfigError::BridgeOutsideRing { .. })
        ));
        assert!(matches!(
            HierConfig::builder(4, 8, 2).bridge_queue_depth(0).build(),
            Err(HierConfigError::ZeroQueueDepth)
        ));
        assert!(matches!(
            HierConfig::builder(4, 8, 0).build(),
            Err(HierConfigError::Ring(_))
        ));
        let local = RmbConfig::new(8, 2).unwrap();
        let global = RmbConfig::new(3, 2).unwrap();
        assert!(matches!(
            HierConfig::new(4, local, global, NodeId::new(0), 4, 8),
            Err(HierConfigError::GlobalSizeMismatch { .. })
        ));
    }

    #[test]
    fn flatten_is_ring_major() {
        let cfg = HierConfig::builder(4, 16, 4).build().unwrap();
        assert_eq!(cfg.flatten(NodeAddr::new(0, NodeId::new(5))), NodeId::new(5));
        assert_eq!(cfg.flatten(NodeAddr::new(2, NodeId::new(3))), NodeId::new(35));
    }

    #[test]
    fn error_display_is_lowercase() {
        let msgs = [
            HierConfigError::TooFewRings(1).to_string(),
            HierConfigError::GlobalSizeMismatch { rings: 4, global_nodes: 3 }.to_string(),
            HierConfigError::BridgeOutsideRing { bridge: NodeId::new(9), nodes: 8 }.to_string(),
            HierConfigError::ZeroQueueDepth.to_string(),
            HierConfigError::Ring(crate::ConfigError::NoBuses).to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(m.chars().next().unwrap().is_lowercase());
            assert!(!m.ends_with('.'));
        }
    }
}
