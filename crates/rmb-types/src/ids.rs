//! Identifier newtypes for nodes, buses, requests and virtual buses.

use std::fmt;

/// Identifies a node (a PE + INC pair) on the ring, numbered `0..N`.
///
/// The paper numbers the nodes of the multiprocessor `0` to `N - 1` and uses
/// the same number to refer to the PE and the INC of a node (§2.1).
///
/// # Examples
///
/// ```
/// use rmb_types::NodeId;
/// let n = NodeId::new(3);
/// assert_eq!(n.index(), 3);
/// assert_eq!(format!("{n}"), "n3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node identifier from a raw ring position.
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// Returns the raw ring position.
    pub const fn index(self) -> u32 {
        self.0
    }

    /// Returns the position as a `usize`, convenient for indexing vectors.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }

    /// Returns `true` when the node occupies an even ring position.
    ///
    /// The odd/even cycle protocol (§2.4) marks each INC as odd or even
    /// "depending on its position"; this parity drives which bus segments
    /// an INC assesses for compaction in each cycle.
    pub const fn is_even(self) -> bool {
        self.0.is_multiple_of(2)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// Identifies one of the `k` parallel physical bus segments, numbered
/// `0` (bottom) to `k - 1` (top).
///
/// New communication requests enter the RMB only on the *top* bus segment
/// `k - 1`; the compaction protocol migrates live virtual buses strictly
/// downward toward index `0` (§2.2).
///
/// # Examples
///
/// ```
/// use rmb_types::BusIndex;
/// let b = BusIndex::new(2);
/// assert_eq!(b.lower(), Some(BusIndex::new(1)));
/// assert_eq!(BusIndex::new(0).lower(), None);
/// assert!(b.is_even());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BusIndex(u16);

impl BusIndex {
    /// Creates a bus index.
    pub const fn new(index: u16) -> Self {
        BusIndex(index)
    }

    /// Returns the raw index (0 = bottom).
    pub const fn index(self) -> u16 {
        self.0
    }

    /// Returns the index as a `usize`, convenient for indexing vectors.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }

    /// Returns the next bus segment *down* (toward 0), or `None` at the
    /// bottom. Compaction only ever moves transactions in this direction.
    pub const fn lower(self) -> Option<BusIndex> {
        match self.0.checked_sub(1) {
            Some(v) => Some(BusIndex(v)),
            None => None,
        }
    }

    /// Returns the next bus segment *up* (toward `k - 1`).
    pub const fn upper(self) -> BusIndex {
        BusIndex(self.0 + 1)
    }

    /// Returns `true` when the segment index is even.
    ///
    /// Segment parity, together with node parity and the odd/even cycle
    /// phase, decides which segments are assessed for compaction (§2.4).
    pub const fn is_even(self) -> bool {
        self.0.is_multiple_of(2)
    }

    /// Absolute distance between two bus indices.
    pub const fn distance(self, other: BusIndex) -> u16 {
        self.0.abs_diff(other.0)
    }

    /// Returns `true` if `other` is reachable from `self` through a single
    /// INC, i.e. the indices differ by at most one. The paper's INC design
    /// allows input port `l` to connect only to output ports
    /// `{l - 1, l, l + 1}` (§2.2).
    pub const fn is_adjacent_or_equal(self, other: BusIndex) -> bool {
        self.0.abs_diff(other.0) <= 1
    }
}

impl fmt::Display for BusIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

impl From<u16> for BusIndex {
    fn from(v: u16) -> Self {
        BusIndex(v)
    }
}

/// The size `N` of the ring, with modular successor/predecessor arithmetic.
///
/// # Examples
///
/// ```
/// use rmb_types::{NodeId, RingSize};
/// let ring = RingSize::new(8).unwrap();
/// assert_eq!(ring.successor(NodeId::new(7)), NodeId::new(0));
/// assert_eq!(ring.predecessor(NodeId::new(0)), NodeId::new(7));
/// assert_eq!(ring.clockwise_distance(NodeId::new(6), NodeId::new(2)), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RingSize(u32);

impl RingSize {
    /// Creates a ring size. Returns `None` for rings smaller than 2 nodes,
    /// which cannot host any communication.
    pub const fn new(n: u32) -> Option<Self> {
        if n >= 2 {
            Some(RingSize(n))
        } else {
            None
        }
    }

    /// Number of nodes on the ring.
    pub const fn get(self) -> u32 {
        self.0
    }

    /// Number of nodes as a `usize`.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }

    /// The clockwise neighbour of `node` (all indices modulo `N`, §2.2).
    pub const fn successor(self, node: NodeId) -> NodeId {
        NodeId((node.index() + 1) % self.0)
    }

    /// The counter-clockwise neighbour of `node`.
    pub const fn predecessor(self, node: NodeId) -> NodeId {
        NodeId((node.index() + self.0 - 1) % self.0)
    }

    /// Number of clockwise hops from `from` to `to`. Data on the RMB flows
    /// only clockwise, so this is the path length of a message.
    pub const fn clockwise_distance(self, from: NodeId, to: NodeId) -> u32 {
        let d = to.index() + self.0 - from.index();
        if d < self.0 {
            d
        } else {
            d - self.0
        }
    }

    /// Advances `node` by `hops` clockwise steps.
    ///
    /// Hop counts below the ring size (every per-hop walk in the
    /// protocol) take the division-free path: one compare-subtract
    /// instead of two hardware divides.
    pub const fn advance(self, node: NodeId, hops: u32) -> NodeId {
        let h = if hops < self.0 { hops } else { hops % self.0 };
        let s = node.index() + h;
        NodeId(if s < self.0 { s } else { s - self.0 })
    }

    /// Returns an iterator over all node identifiers `0..N`.
    pub fn nodes(self) -> impl Iterator<Item = NodeId> {
        (0..self.0).map(NodeId::new)
    }

    /// Returns `true` when `node` is a valid position on this ring.
    pub const fn contains(self, node: NodeId) -> bool {
        node.index() < self.0
    }
}

impl fmt::Display for RingSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N={}", self.0)
    }
}

/// Identifies one communication request (one message) end to end.
///
/// A request is born when a PE asks its INC for a connection, and dies when
/// the final-flit acknowledgement (`Fack`) has removed its virtual bus, or
/// when a `Nack` refused it (§2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(u64);

impl RequestId {
    /// Creates a request identifier.
    pub const fn new(v: u64) -> Self {
        RequestId(v)
    }

    /// Returns the raw value.
    pub const fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Identifies one virtual bus: the chain of physical bus segments currently
/// carrying a request's circuit.
///
/// The paper distinguishes physical bus segments from the *virtual* buses
/// laid over them: during the lifetime of a communication, the virtual bus
/// "may be moved down to other buses" by compaction, which is the reason for
/// calling the channel a virtual bus (§2.2, Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VirtualBusId(u64);

impl VirtualBusId {
    /// Creates a virtual-bus identifier.
    pub const fn new(v: u64) -> Self {
        VirtualBusId(v)
    }

    /// Returns the raw value.
    pub const fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for VirtualBusId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip_and_parity() {
        let n = NodeId::new(7);
        assert_eq!(n.index(), 7);
        assert_eq!(n.as_usize(), 7);
        assert!(!n.is_even());
        assert!(NodeId::new(0).is_even());
        assert_eq!(NodeId::from(5u32), NodeId::new(5));
    }

    #[test]
    fn bus_index_lower_upper() {
        let b = BusIndex::new(3);
        assert_eq!(b.lower(), Some(BusIndex::new(2)));
        assert_eq!(b.upper(), BusIndex::new(4));
        assert_eq!(BusIndex::new(0).lower(), None);
    }

    #[test]
    fn bus_index_adjacency_matches_inc_switch_range() {
        let b = BusIndex::new(5);
        assert!(b.is_adjacent_or_equal(BusIndex::new(4)));
        assert!(b.is_adjacent_or_equal(BusIndex::new(5)));
        assert!(b.is_adjacent_or_equal(BusIndex::new(6)));
        assert!(!b.is_adjacent_or_equal(BusIndex::new(7)));
        assert!(!b.is_adjacent_or_equal(BusIndex::new(3)));
    }

    #[test]
    fn ring_size_rejects_degenerate_rings() {
        assert!(RingSize::new(0).is_none());
        assert!(RingSize::new(1).is_none());
        assert!(RingSize::new(2).is_some());
    }

    #[test]
    fn ring_modular_arithmetic() {
        let ring = RingSize::new(5).unwrap();
        assert_eq!(ring.successor(NodeId::new(4)), NodeId::new(0));
        assert_eq!(ring.predecessor(NodeId::new(0)), NodeId::new(4));
        assert_eq!(ring.clockwise_distance(NodeId::new(1), NodeId::new(1)), 0);
        assert_eq!(ring.clockwise_distance(NodeId::new(3), NodeId::new(1)), 3);
        assert_eq!(ring.advance(NodeId::new(3), 7), NodeId::new(0));
        assert_eq!(ring.nodes().count(), 5);
        assert!(ring.contains(NodeId::new(4)));
        assert!(!ring.contains(NodeId::new(5)));
    }

    #[test]
    fn display_forms_are_nonempty_and_stable() {
        assert_eq!(NodeId::new(1).to_string(), "n1");
        assert_eq!(BusIndex::new(2).to_string(), "b2");
        assert_eq!(RequestId::new(3).to_string(), "r3");
        assert_eq!(VirtualBusId::new(4).to_string(), "v4");
        assert_eq!(RingSize::new(6).unwrap().to_string(), "N=6");
    }

    #[test]
    fn json_roundtrip() {
        use crate::json::{FromJson, ToJson};
        let n = NodeId::new(9);
        assert_eq!(NodeId::from_json(&n.to_json()).unwrap(), n);
        let b = BusIndex::new(2);
        assert_eq!(BusIndex::from_json(&b.to_json()).unwrap(), b);
    }
}
