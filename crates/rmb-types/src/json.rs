//! Minimal, dependency-free JSON encoding for the types experiments
//! serialize.
//!
//! The workspace runs in hermetic environments with no external crates, so
//! instead of a serde derive this module hand-rolls a canonical emitter and
//! a small recursive-descent parser for exactly the types that cross a
//! process boundary: [`RmbConfig`], [`MessageSpec`], [`DeliveredMessage`]
//! and the identifier newtypes. The emitted form is canonical (fixed key
//! order, no whitespace) so byte-equality of two reports implies value
//! equality.
//!
//! # Examples
//!
//! ```
//! use rmb_types::json::{FromJson, ToJson};
//! use rmb_types::{MessageSpec, NodeId};
//!
//! let m = MessageSpec::new(NodeId::new(0), NodeId::new(3), 16).at(100);
//! let s = m.to_json();
//! assert_eq!(MessageSpec::from_json(&s).unwrap(), m);
//! ```

use crate::config::{AckMode, InsertionPolicy, RmbConfig};
use crate::ids::{BusIndex, NodeId, RequestId};
use crate::message::{DeliveredMessage, MessageSpec};
use std::fmt;

/// Parse error: byte offset plus a short description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset in the input where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// A parsed JSON document.
///
/// Integers are kept exact (`i128` covers every `u64`/`i64` the workspace
/// emits); anything with a fraction or exponent becomes [`Value::Float`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer without fraction or exponent.
    Int(i128),
    /// Any other number.
    Float(f64),
    /// String (escapes decoded).
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object, in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Parses a complete JSON document (trailing whitespace allowed).
    pub fn parse(input: &str) -> Result<Value, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing data"));
        }
        Ok(v)
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Required object field, with a helpful error.
    pub fn field(&self, key: &str) -> Result<&Value, JsonError> {
        self.get(key).ok_or_else(|| JsonError {
            at: 0,
            message: format!("missing field `{key}`"),
        })
    }

    /// The value as a `u64`, if it is a non-negative integer in range.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(i) => u64::try_from(i).ok(),
            _ => None,
        }
    }

    /// The value as a `u32`.
    pub fn as_u32(&self) -> Option<u32> {
        self.as_u64().and_then(|v| u32::try_from(v).ok())
    }

    /// The value as a `u16`.
    pub fn as_u16(&self) -> Option<u16> {
        self.as_u64().and_then(|v| u16::try_from(v).ok())
    }

    /// The value as an `f64` (integers widen; precision loss accepted).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, lit: &str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'n') => {
                self.eat("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.eat("[")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.eat("{")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(":")?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat("\"")?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(hex).ok_or_else(|| self.err("bad code point"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Multi-byte UTF-8: copy the full scalar.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    self.pos = start + len;
                    let s = self
                        .bytes
                        .get(start..start + len)
                        .and_then(|s| std::str::from_utf8(s).ok())
                        .ok_or_else(|| self.err("invalid utf-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("invalid number"))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| self.err("invalid number"))
        }
    }
}

const fn utf8_len(first: u8) -> usize {
    match first {
        b if b < 0x80 => 1,
        b if b < 0xe0 => 2,
        b if b < 0xf0 => 3,
        _ => 4,
    }
}

/// Escapes a string for embedding in a JSON document (quotes included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Types with a canonical JSON form.
pub trait ToJson {
    /// Canonical (fixed key order, no whitespace) JSON encoding.
    fn to_json(&self) -> String;
}

/// Types parseable from their canonical JSON form.
pub trait FromJson: Sized {
    /// Parses the canonical encoding produced by [`ToJson::to_json`].
    fn from_json(s: &str) -> Result<Self, JsonError>;

    /// Reconstructs the value from an already-parsed [`Value`].
    fn from_value(v: &Value) -> Result<Self, JsonError>;
}

fn bad(message: &str) -> JsonError {
    JsonError {
        at: 0,
        message: message.to_string(),
    }
}

impl ToJson for NodeId {
    fn to_json(&self) -> String {
        self.index().to_string()
    }
}

impl FromJson for NodeId {
    fn from_json(s: &str) -> Result<Self, JsonError> {
        Self::from_value(&Value::parse(s)?)
    }
    fn from_value(v: &Value) -> Result<Self, JsonError> {
        v.as_u32().map(NodeId::new).ok_or_else(|| bad("NodeId: expected u32"))
    }
}

impl ToJson for BusIndex {
    fn to_json(&self) -> String {
        self.index().to_string()
    }
}

impl FromJson for BusIndex {
    fn from_json(s: &str) -> Result<Self, JsonError> {
        Self::from_value(&Value::parse(s)?)
    }
    fn from_value(v: &Value) -> Result<Self, JsonError> {
        v.as_u16().map(BusIndex::new).ok_or_else(|| bad("BusIndex: expected u16"))
    }
}

impl ToJson for MessageSpec {
    fn to_json(&self) -> String {
        format!(
            "{{\"source\":{},\"destination\":{},\"data_flits\":{},\"inject_at\":{}}}",
            self.source.index(),
            self.destination.index(),
            self.data_flits,
            self.inject_at
        )
    }
}

impl FromJson for MessageSpec {
    fn from_json(s: &str) -> Result<Self, JsonError> {
        Self::from_value(&Value::parse(s)?)
    }
    fn from_value(v: &Value) -> Result<Self, JsonError> {
        Ok(MessageSpec {
            source: NodeId::new(
                v.field("source")?.as_u32().ok_or_else(|| bad("source: expected u32"))?,
            ),
            destination: NodeId::new(
                v.field("destination")?
                    .as_u32()
                    .ok_or_else(|| bad("destination: expected u32"))?,
            ),
            data_flits: v
                .field("data_flits")?
                .as_u32()
                .ok_or_else(|| bad("data_flits: expected u32"))?,
            inject_at: v
                .field("inject_at")?
                .as_u64()
                .ok_or_else(|| bad("inject_at: expected u64"))?,
        })
    }
}

impl ToJson for DeliveredMessage {
    fn to_json(&self) -> String {
        format!(
            "{{\"request\":{},\"spec\":{},\"requested_at\":{},\"circuit_at\":{},\"delivered_at\":{},\"refusals\":{}}}",
            self.request.get(),
            self.spec.to_json(),
            self.requested_at,
            self.circuit_at,
            self.delivered_at,
            self.refusals
        )
    }
}

impl FromJson for DeliveredMessage {
    fn from_json(s: &str) -> Result<Self, JsonError> {
        Self::from_value(&Value::parse(s)?)
    }
    fn from_value(v: &Value) -> Result<Self, JsonError> {
        Ok(DeliveredMessage {
            request: RequestId::new(
                v.field("request")?.as_u64().ok_or_else(|| bad("request: expected u64"))?,
            ),
            spec: MessageSpec::from_value(v.field("spec")?)?,
            requested_at: v
                .field("requested_at")?
                .as_u64()
                .ok_or_else(|| bad("requested_at: expected u64"))?,
            circuit_at: v
                .field("circuit_at")?
                .as_u64()
                .ok_or_else(|| bad("circuit_at: expected u64"))?,
            delivered_at: v
                .field("delivered_at")?
                .as_u64()
                .ok_or_else(|| bad("delivered_at: expected u64"))?,
            refusals: v
                .field("refusals")?
                .as_u32()
                .ok_or_else(|| bad("refusals: expected u32"))?,
        })
    }
}

impl ToJson for RmbConfig {
    fn to_json(&self) -> String {
        let insertion = match self.insertion {
            InsertionPolicy::TopBusOnly => "\"top_bus_only\"",
            InsertionPolicy::AnyFreeBus => "\"any_free_bus\"",
        };
        let head_timeout = match self.head_timeout {
            Some(t) => t.to_string(),
            None => "null".to_string(),
        };
        let ack_mode = match self.ack_mode {
            AckMode::PerFlit => "\"per_flit\"".to_string(),
            AckMode::Windowed { window } => format!("{{\"windowed\":{window}}}"),
            AckMode::Unlimited => "\"unlimited\"".to_string(),
        };
        format!(
            "{{\"nodes\":{},\"buses\":{},\"compaction\":{},\"early_compaction\":{},\"insertion\":{},\"head_timeout\":{},\"ack_mode\":{},\"node\":{{\"max_concurrent_sends\":{},\"max_concurrent_receives\":{},\"retry_backoff\":{}}}}}",
            self.nodes().get(),
            self.buses(),
            self.compaction,
            self.early_compaction,
            insertion,
            head_timeout,
            ack_mode,
            self.node.max_concurrent_sends,
            self.node.max_concurrent_receives,
            self.node.retry_backoff
        )
    }
}

impl FromJson for RmbConfig {
    fn from_json(s: &str) -> Result<Self, JsonError> {
        Self::from_value(&Value::parse(s)?)
    }
    fn from_value(v: &Value) -> Result<Self, JsonError> {
        let n = v.field("nodes")?.as_u32().ok_or_else(|| bad("nodes: expected u32"))?;
        let k = v.field("buses")?.as_u16().ok_or_else(|| bad("buses: expected u16"))?;
        let node = v.field("node")?;
        let mut b = RmbConfig::builder(n, k)
            .compaction(
                v.field("compaction")?
                    .as_bool()
                    .ok_or_else(|| bad("compaction: expected bool"))?,
            )
            .early_compaction(
                v.field("early_compaction")?
                    .as_bool()
                    .ok_or_else(|| bad("early_compaction: expected bool"))?,
            )
            .insertion(match v.field("insertion")?.as_str() {
                Some("top_bus_only") => InsertionPolicy::TopBusOnly,
                Some("any_free_bus") => InsertionPolicy::AnyFreeBus,
                _ => return Err(bad("insertion: unknown policy")),
            })
            .ack_mode(match v.field("ack_mode")? {
                Value::Str(s) if s == "per_flit" => AckMode::PerFlit,
                Value::Str(s) if s == "unlimited" => AckMode::Unlimited,
                obj @ Value::Obj(_) => AckMode::Windowed {
                    window: obj
                        .field("windowed")?
                        .as_u32()
                        .ok_or_else(|| bad("windowed: expected u32"))?,
                },
                _ => return Err(bad("ack_mode: unknown mode")),
            })
            .max_concurrent_sends(
                node.field("max_concurrent_sends")?
                    .as_u32()
                    .ok_or_else(|| bad("max_concurrent_sends: expected u32"))?,
            )
            .max_concurrent_receives(
                node.field("max_concurrent_receives")?
                    .as_u32()
                    .ok_or_else(|| bad("max_concurrent_receives: expected u32"))?,
            )
            .retry_backoff(
                node.field("retry_backoff")?
                    .as_u64()
                    .ok_or_else(|| bad("retry_backoff: expected u64"))?,
            );
        if let Some(t) = match v.field("head_timeout")? {
            Value::Null => None,
            other => Some(other.as_u64().ok_or_else(|| bad("head_timeout: expected u64"))?),
        } {
            b = b.head_timeout(t);
        }
        b.build().map_err(|e| bad(&format!("invalid config: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Value::parse("null").unwrap(), Value::Null);
        assert_eq!(Value::parse("true").unwrap(), Value::Bool(true));
        assert_eq!(Value::parse(" -42 ").unwrap(), Value::Int(-42));
        assert_eq!(Value::parse("1.5").unwrap(), Value::Float(1.5));
        assert_eq!(
            Value::parse("\"a\\nb\"").unwrap(),
            Value::Str("a\nb".to_string())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = Value::parse("{\"a\": [1, 2, {\"b\": false}], \"c\": null}").unwrap();
        let arr = v.get("a").unwrap();
        match arr {
            Value::Arr(items) => {
                assert_eq!(items.len(), 3);
                assert_eq!(items[2].get("b"), Some(&Value::Bool(false)));
            }
            _ => panic!("expected array"),
        }
        assert_eq!(v.get("c"), Some(&Value::Null));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Value::parse("").is_err());
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("1 2").is_err());
        assert!(Value::parse("\"open").is_err());
    }

    #[test]
    fn escape_round_trips() {
        let s = "he said \"hi\"\n\ttab\\done";
        let enc = escape(s);
        assert_eq!(Value::parse(&enc).unwrap(), Value::Str(s.to_string()));
    }

    #[test]
    fn message_spec_round_trip() {
        let m = MessageSpec::new(NodeId::new(7), NodeId::new(2), 33).at(900);
        assert_eq!(MessageSpec::from_json(&m.to_json()).unwrap(), m);
    }

    #[test]
    fn delivered_round_trip() {
        let d = DeliveredMessage {
            request: RequestId::new(u64::MAX),
            spec: MessageSpec::new(NodeId::new(0), NodeId::new(1), 4),
            requested_at: 10,
            circuit_at: 25,
            delivered_at: 40,
            refusals: 2,
        };
        assert_eq!(DeliveredMessage::from_json(&d.to_json()).unwrap(), d);
    }

    #[test]
    fn config_round_trip_all_modes() {
        let plain = RmbConfig::new(16, 4).unwrap();
        assert_eq!(RmbConfig::from_json(&plain.to_json()).unwrap(), plain);

        let fancy = RmbConfig::builder(64, 8)
            .compaction(false)
            .early_compaction(true)
            .insertion(InsertionPolicy::AnyFreeBus)
            .head_timeout(77)
            .ack_mode(AckMode::Windowed { window: 5 })
            .retry_backoff(9)
            .max_concurrent_sends(2)
            .max_concurrent_receives(3)
            .build()
            .unwrap();
        assert_eq!(RmbConfig::from_json(&fancy.to_json()).unwrap(), fancy);

        let per_flit = RmbConfig::builder(8, 2)
            .ack_mode(AckMode::PerFlit)
            .build()
            .unwrap();
        assert_eq!(RmbConfig::from_json(&per_flit.to_json()).unwrap(), per_flit);
    }
}
