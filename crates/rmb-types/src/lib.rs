//! Shared vocabulary for the RMB (Reconfigurable Multiple Bus Network)
//! reproduction.
//!
//! The RMB paper (ElGindy, Schröder, Spray, Somani, Schmeck — HPCA 1996)
//! describes a ring of `N` nodes, each holding a processing element (PE)
//! and an interconnection network controller (INC), with `k` parallel bus
//! segments between every pair of adjacent INCs. This crate defines the
//! identifier newtypes, flit/acknowledgement enums, message descriptors,
//! configuration structures and error types that every other crate in the
//! workspace builds on.
//!
//! # Examples
//!
//! ```
//! use rmb_types::{NodeId, BusIndex, RingSize, RmbConfig};
//!
//! let cfg = RmbConfig::new(16, 4).expect("valid dimensions");
//! assert_eq!(cfg.nodes(), RingSize::new(16).unwrap());
//! assert_eq!(cfg.top_bus(), BusIndex::new(3));
//! let n = NodeId::new(15);
//! assert_eq!(cfg.nodes().successor(n), NodeId::new(0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod error;
mod exec;
mod fault;
mod flit;
mod hier;
mod ids;
pub mod json;
mod message;
pub mod report;

pub use config::{AckMode, InsertionPolicy, NodeConfig, RmbConfig, RmbConfigBuilder};
pub use error::{ConfigError, ProtocolError};
pub use exec::{ExecMode, PerfStats};
pub use fault::{FaultEvent, FaultKind, FaultPlan, FaultPlanError};
pub use flit::{Ack, AckKind, Flit, FlitKind, FlitPayload};
pub use hier::{HierConfig, HierConfigBuilder, HierConfigError, HierLeg, HierMessageSpec, NodeAddr};
pub use ids::{BusIndex, NodeId, RequestId, RingSize, VirtualBusId};
pub use message::{AbortedMessage, DeliveredMessage, MessageSpec, MessageStatus};
pub use report::{LatencySummary, StatsReport};
