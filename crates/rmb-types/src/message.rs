//! Message descriptors used by workloads and simulators.

use crate::ids::{NodeId, RequestId};
use std::fmt;

/// A message a PE wants to send: the unit of work fed to every simulator in
/// the workspace (RMB and baselines alike).
///
/// # Examples
///
/// ```
/// use rmb_types::{MessageSpec, NodeId};
/// let m = MessageSpec::new(NodeId::new(0), NodeId::new(3), 16).at(100);
/// assert_eq!(m.data_flits, 16);
/// assert_eq!(m.inject_at, 100);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MessageSpec {
    /// Originating node.
    pub source: NodeId,
    /// Destination node. Must differ from `source`.
    pub destination: NodeId,
    /// Number of data flits in the message body (the header and final flits
    /// are accounted for separately by each simulator).
    pub data_flits: u32,
    /// Simulation tick at which the PE first asks its INC for a connection.
    pub inject_at: u64,
}

impl MessageSpec {
    /// Creates a message injected at tick 0.
    pub const fn new(source: NodeId, destination: NodeId, data_flits: u32) -> Self {
        MessageSpec {
            source,
            destination,
            data_flits,
            inject_at: 0,
        }
    }

    /// Returns a copy scheduled for injection at `tick`.
    pub const fn at(mut self, tick: u64) -> Self {
        self.inject_at = tick;
        self
    }

    /// Total flit count including header and final flits.
    pub const fn total_flits(&self) -> u32 {
        self.data_flits + 2
    }
}

impl fmt::Display for MessageSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}->{} ({} DFs @t{})",
            self.source, self.destination, self.data_flits, self.inject_at
        )
    }
}

/// Terminal status of a request inside a simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageStatus {
    /// Waiting for injection (top output port busy, or PE send slot busy).
    Pending,
    /// Circuit being established (header flit in flight).
    Connecting,
    /// Circuit established, data flits streaming.
    Streaming,
    /// Delivered in full, virtual bus removed.
    Delivered,
    /// Refused by the destination with a `Nack`; will be retried.
    Refused,
}

impl fmt::Display for MessageStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MessageStatus::Pending => "pending",
            MessageStatus::Connecting => "connecting",
            MessageStatus::Streaming => "streaming",
            MessageStatus::Delivered => "delivered",
            MessageStatus::Refused => "refused",
        };
        f.write_str(s)
    }
}

/// Completion record for a delivered message, as reported by a simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DeliveredMessage {
    /// The request that carried the message.
    pub request: RequestId,
    /// The original specification.
    pub spec: MessageSpec,
    /// Tick at which the PE asked for the connection.
    pub requested_at: u64,
    /// Tick at which the circuit was acknowledged (`Hack` back at source).
    pub circuit_at: u64,
    /// Tick at which the final flit arrived at the destination.
    pub delivered_at: u64,
    /// Number of `Nack` refusals suffered before this delivery.
    pub refusals: u32,
}

impl DeliveredMessage {
    /// End-to-end latency in ticks, from request to last flit delivered.
    pub const fn latency(&self) -> u64 {
        self.delivered_at.saturating_sub(self.requested_at)
    }

    /// Circuit set-up time in ticks (request until `Hack` returns).
    pub const fn setup_latency(&self) -> u64 {
        self.circuit_at.saturating_sub(self.requested_at)
    }
}

/// Terminal record for a message that was given up on: either refused at
/// the source while its path was fault-blocked, or torn down after its
/// retry budget ran out. Mirrors [`DeliveredMessage`] for the failure
/// path so compositions (bridged rings, scripted drivers) can account
/// for every request without scraping the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AbortedMessage {
    /// The request that carried the message.
    pub request: RequestId,
    /// The original specification.
    pub spec: MessageSpec,
    /// Tick at which the engine recorded the abort.
    pub aborted_at: u64,
    /// Number of `Nack` refusals suffered before the abort.
    pub refusals: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_builders() {
        let m = MessageSpec::new(NodeId::new(1), NodeId::new(2), 8).at(5);
        assert_eq!(m.inject_at, 5);
        assert_eq!(m.total_flits(), 10);
        assert_eq!(m.to_string(), "n1->n2 (8 DFs @t5)");
    }

    #[test]
    fn delivered_latencies() {
        let d = DeliveredMessage {
            request: RequestId::new(1),
            spec: MessageSpec::new(NodeId::new(0), NodeId::new(1), 4),
            requested_at: 10,
            circuit_at: 25,
            delivered_at: 40,
            refusals: 2,
        };
        assert_eq!(d.latency(), 30);
        assert_eq!(d.setup_latency(), 15);
    }

    #[test]
    fn status_display() {
        assert_eq!(MessageStatus::Pending.to_string(), "pending");
        assert_eq!(MessageStatus::Delivered.to_string(), "delivered");
    }
}
