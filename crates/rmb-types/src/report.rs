//! A unified reporting surface for every simulator in the workspace.
//!
//! Closed-loop batch runs (`rmb-core`'s `RunReport`), hierarchical sweeps
//! (`rmb-hier`'s `HierReport`) and open-loop serving runs (`rmb-serve`'s
//! `ServeReport`) all answer the same questions — how long did it run, what
//! was delivered, what was refused or shed, how loaded were the buses, how
//! long did messages take — but historically each answered them through its
//! own struct with its own field names. [`StatsReport`] is the common
//! denominator: experiment emitters consume `&dyn StatsReport` and produce
//! schema-compatible JSON rows regardless of which engine ran.
//!
//! # Examples
//!
//! ```
//! use rmb_types::report::{LatencySummary, StatsReport};
//!
//! struct Toy;
//! impl StatsReport for Toy {
//!     fn ticks(&self) -> u64 { 100 }
//!     fn delivered_count(&self) -> u64 { 7 }
//!     fn aborted_count(&self) -> u64 { 1 }
//!     fn refusal_count(&self) -> u64 { 3 }
//!     fn is_stalled(&self) -> bool { false }
//!     fn latency(&self) -> LatencySummary {
//!         LatencySummary { count: 7, mean: 12.5, ..LatencySummary::default() }
//!     }
//! }
//! let json = Toy.to_json_object();
//! assert!(json.starts_with("{\"ticks\":100,"));
//! assert!(json.contains("\"delivered\":7"));
//! ```

use crate::exec::PerfStats;
use std::fmt::Write as _;

/// Latency digest shared by every report type.
///
/// Engines that retain full delivery logs compute these exactly; engines
/// running with counters-only retention feed a streaming quantile sketch
/// and report rank-error-bounded estimates. Absent percentiles (sketch
/// disabled, or nothing delivered) are `None` and serialize as `null`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencySummary {
    /// Number of latency samples (delivered messages).
    pub count: u64,
    /// Mean end-to-end latency in ticks (0 when `count` is 0).
    pub mean: f64,
    /// Median latency estimate.
    pub p50: Option<u64>,
    /// 99th-percentile latency estimate.
    pub p99: Option<u64>,
    /// 99.9th-percentile latency estimate.
    pub p999: Option<u64>,
    /// Largest observed latency.
    pub max: Option<u64>,
}

impl LatencySummary {
    /// A summary with just a count and mean (no percentile tracking).
    pub fn mean_only(count: u64, mean: f64) -> Self {
        LatencySummary {
            count,
            mean,
            ..LatencySummary::default()
        }
    }

    /// Exact summary over a complete sample set, with nearest-rank
    /// percentiles (the value at rank `ceil(phi * count)`, 1-indexed).
    /// Empty input gives the all-`None` default. Use when a full latency
    /// log is available; engines streaming through a sketch report
    /// estimates instead.
    pub fn exact_from(latencies: &[u64]) -> Self {
        if latencies.is_empty() {
            return LatencySummary::default();
        }
        let mut sorted = latencies.to_vec();
        sorted.sort_unstable();
        let count = sorted.len() as u64;
        let mean = sorted.iter().map(|&l| l as f64).sum::<f64>() / count as f64;
        let rank = |phi: f64| {
            let r = (phi * count as f64).ceil() as usize;
            sorted[r.clamp(1, sorted.len()) - 1]
        };
        LatencySummary {
            count,
            mean,
            p50: Some(rank(0.5)),
            p99: Some(rank(0.99)),
            p999: Some(rank(0.999)),
            max: sorted.last().copied(),
        }
    }
}

/// The statistics every simulator run can report, regardless of engine.
///
/// The provided [`StatsReport::to_json_object`] emits the canonical
/// cross-engine schema used by experiment rows; implementors normally
/// override only the accessor methods. Counters are totals over the run —
/// none of them depend on the engine's log-retention policy.
pub trait StatsReport {
    /// Ticks simulated.
    fn ticks(&self) -> u64;

    /// Messages delivered in full.
    fn delivered_count(&self) -> u64;

    /// Messages given up on after exhausting their retry budget.
    fn aborted_count(&self) -> u64;

    /// Offered arrivals refused admission by the driver (never entered the
    /// network). Only open-loop drivers shed; batch engines report 0.
    fn shed_count(&self) -> u64 {
        0
    }

    /// Connection refusals (`Nack`s, bridge refusals, leg refusals) issued
    /// inside the network.
    fn refusal_count(&self) -> u64;

    /// Mean fraction of busy physical segments over the run, when the
    /// engine tracks it.
    fn mean_utilization(&self) -> Option<f64> {
        None
    }

    /// `true` if the run ended without progress while work remained.
    fn is_stalled(&self) -> bool;

    /// Wall-clock measurement of the run, when the engine timed it.
    /// Absent perf serializes as `null` for every perf key, so the schema
    /// is identical whether or not a run was timed.
    fn perf(&self) -> Option<PerfStats> {
        None
    }

    /// Latency digest over delivered messages.
    fn latency(&self) -> LatencySummary;

    /// The canonical cross-engine JSON object (fixed key order, no
    /// whitespace) consumed by experiment emitters.
    fn to_json_object(&self) -> String {
        let lat = self.latency();
        let mut out = String::with_capacity(256);
        let _ = write!(
            out,
            "{{\"ticks\":{},\"delivered\":{},\"aborted\":{},\"shed\":{},\"refusals\":{},",
            self.ticks(),
            self.delivered_count(),
            self.aborted_count(),
            self.shed_count(),
            self.refusal_count(),
        );
        match self.mean_utilization() {
            Some(u) if u.is_finite() => {
                let _ = write!(out, "\"utilization\":{u:.6},");
            }
            _ => out.push_str("\"utilization\":null,"),
        }
        let _ = write!(out, "\"stalled\":{},", self.is_stalled());
        match self.perf() {
            Some(p) if p.wall_ms.is_finite() && p.sim_ticks_per_sec.is_finite() => {
                let _ = write!(
                    out,
                    "\"wall_ms\":{:.3},\"sim_ticks_per_sec\":{:.1},\"threads\":{},",
                    p.wall_ms, p.sim_ticks_per_sec, p.threads,
                );
            }
            _ => out.push_str("\"wall_ms\":null,\"sim_ticks_per_sec\":null,\"threads\":null,"),
        }
        let _ = write!(
            out,
            "\"latency\":{{\"count\":{},\"mean\":{:.4},",
            lat.count,
            if lat.mean.is_finite() { lat.mean } else { 0.0 },
        );
        for (key, v) in [
            ("p50", lat.p50),
            ("p99", lat.p99),
            ("p999", lat.p999),
            ("max", lat.max),
        ] {
            match v {
                Some(q) => {
                    let _ = write!(out, "\"{key}\":{q},");
                }
                None => {
                    let _ = write!(out, "\"{key}\":null,");
                }
            }
        }
        out.pop(); // trailing comma inside the latency object
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Value;

    struct Fake {
        shed: u64,
        util: Option<f64>,
        p50: Option<u64>,
    }

    impl StatsReport for Fake {
        fn ticks(&self) -> u64 {
            1000
        }
        fn delivered_count(&self) -> u64 {
            42
        }
        fn aborted_count(&self) -> u64 {
            3
        }
        fn shed_count(&self) -> u64 {
            self.shed
        }
        fn refusal_count(&self) -> u64 {
            17
        }
        fn mean_utilization(&self) -> Option<f64> {
            self.util
        }
        fn is_stalled(&self) -> bool {
            false
        }
        fn latency(&self) -> LatencySummary {
            LatencySummary {
                count: 42,
                mean: 55.25,
                p50: self.p50,
                p99: self.p50.map(|p| p * 4),
                p999: self.p50.map(|p| p * 9),
                max: self.p50.map(|p| p * 10),
            }
        }
    }

    #[test]
    fn json_object_parses_and_round_trips_fields() {
        let r = Fake {
            shed: 5,
            util: Some(0.125),
            p50: Some(40),
        };
        let v = Value::parse(&r.to_json_object()).expect("valid json");
        assert_eq!(v.field("ticks").unwrap().as_u64(), Some(1000));
        assert_eq!(v.field("delivered").unwrap().as_u64(), Some(42));
        assert_eq!(v.field("shed").unwrap().as_u64(), Some(5));
        assert_eq!(v.field("refusals").unwrap().as_u64(), Some(17));
        let lat = v.field("latency").unwrap();
        assert_eq!(lat.field("p50").unwrap().as_u64(), Some(40));
        assert_eq!(lat.field("p999").unwrap().as_u64(), Some(360));
        assert_eq!(lat.field("max").unwrap().as_u64(), Some(400));
    }

    #[test]
    fn absent_metrics_serialize_as_null() {
        let r = Fake {
            shed: 0,
            util: None,
            p50: None,
        };
        let v = Value::parse(&r.to_json_object()).expect("valid json");
        assert_eq!(v.field("utilization").unwrap(), &Value::Null);
        assert_eq!(
            v.field("latency").unwrap().field("p50").unwrap(),
            &Value::Null
        );
        assert_eq!(
            v.field("latency").unwrap().field("max").unwrap(),
            &Value::Null
        );
    }

    #[test]
    fn key_order_is_canonical() {
        let a = Fake {
            shed: 1,
            util: Some(0.5),
            p50: Some(10),
        }
        .to_json_object();
        let keys: Vec<&str> = a
            .match_indices('"')
            .collect::<Vec<_>>()
            .chunks(2)
            .filter_map(|pair| {
                let (start, _) = pair[0];
                let (end, _) = pair.get(1).copied()?;
                let word = &a[start + 1..end];
                (a.as_bytes().get(end + 1) == Some(&b':')).then_some(word)
            })
            .collect();
        assert_eq!(
            keys,
            [
                "ticks",
                "delivered",
                "aborted",
                "shed",
                "refusals",
                "utilization",
                "stalled",
                "wall_ms",
                "sim_ticks_per_sec",
                "threads",
                "latency",
                "count",
                "mean",
                "p50",
                "p99",
                "p999",
                "max"
            ]
        );
    }

    #[test]
    fn perf_serializes_when_present_and_null_when_absent() {
        struct Timed;
        impl StatsReport for Timed {
            fn ticks(&self) -> u64 {
                500
            }
            fn delivered_count(&self) -> u64 {
                1
            }
            fn aborted_count(&self) -> u64 {
                0
            }
            fn refusal_count(&self) -> u64 {
                0
            }
            fn is_stalled(&self) -> bool {
                false
            }
            fn perf(&self) -> Option<PerfStats> {
                Some(PerfStats {
                    wall_ms: 12.5,
                    sim_ticks_per_sec: 40_000.0,
                    threads: 4,
                })
            }
            fn latency(&self) -> LatencySummary {
                LatencySummary::mean_only(1, 3.0)
            }
        }
        let v = Value::parse(&Timed.to_json_object()).expect("valid json");
        assert_eq!(v.field("threads").unwrap().as_u64(), Some(4));
        assert!(v.field("wall_ms").unwrap().as_f64().unwrap() > 12.0);
        assert!(v.field("sim_ticks_per_sec").unwrap().as_f64().unwrap() > 39_999.0);

        let untimed = Fake {
            shed: 0,
            util: None,
            p50: None,
        };
        let v = Value::parse(&untimed.to_json_object()).expect("valid json");
        assert_eq!(v.field("wall_ms").unwrap(), &Value::Null);
        assert_eq!(v.field("sim_ticks_per_sec").unwrap(), &Value::Null);
        assert_eq!(v.field("threads").unwrap(), &Value::Null);
    }

    #[test]
    fn mean_only_helper() {
        let s = LatencySummary::mean_only(9, 3.5);
        assert_eq!(s.count, 9);
        assert_eq!(s.p50, None);
    }

    #[test]
    fn exact_from_uses_nearest_rank() {
        let s = LatencySummary::exact_from(&[40, 10, 30, 20]);
        assert_eq!(s.count, 4);
        assert_eq!(s.mean, 25.0);
        assert_eq!(s.p50, Some(20)); // rank ceil(0.5 * 4) = 2
        assert_eq!(s.p99, Some(40));
        assert_eq!(s.p999, Some(40));
        assert_eq!(s.max, Some(40));

        let one = LatencySummary::exact_from(&[7]);
        assert_eq!(one.p50, Some(7));
        assert_eq!(one.max, Some(7));

        assert_eq!(LatencySummary::exact_from(&[]), LatencySummary::default());
    }
}
