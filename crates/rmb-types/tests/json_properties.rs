//! Property-based JSON round-trips and arithmetic laws for the shared
//! vocabulary types.

use proptest::prelude::*;
use rmb_types::json::{FromJson, ToJson};
use rmb_types::{
    AckMode, BusIndex, DeliveredMessage, InsertionPolicy, MessageSpec, NodeId, RequestId,
    RingSize, RmbConfig,
};

proptest! {
    #[test]
    fn ring_arithmetic_laws(n in 2u32..2000, a in any::<u32>(), b in any::<u32>()) {
        let ring = RingSize::new(n).unwrap();
        let x = NodeId::new(a % n);
        let y = NodeId::new(b % n);
        // successor/predecessor are inverses.
        prop_assert_eq!(ring.predecessor(ring.successor(x)), x);
        prop_assert_eq!(ring.successor(ring.predecessor(x)), x);
        // clockwise distance is a quasi-metric on the directed ring.
        let d = ring.clockwise_distance(x, y);
        prop_assert!(d < n);
        prop_assert_eq!(ring.advance(x, d), y);
        // Forward + backward distances sum to 0 or N.
        let back = ring.clockwise_distance(y, x);
        prop_assert!(d + back == 0 || d + back == n);
    }

    #[test]
    fn bus_index_lower_upper_inverse(i in 0u16..u16::MAX) {
        let b = BusIndex::new(i);
        prop_assert_eq!(b.upper().lower(), Some(b));
        if let Some(lo) = b.lower() {
            prop_assert_eq!(lo.upper(), b);
            prop_assert!(b.is_adjacent_or_equal(lo));
        }
        prop_assert_eq!(b.distance(b), 0);
    }

    #[test]
    fn message_spec_roundtrips(
        s in any::<u32>(),
        d in any::<u32>(),
        flits in any::<u32>(),
        at in any::<u64>(),
    ) {
        let spec = MessageSpec::new(NodeId::new(s), NodeId::new(d), flits).at(at);
        let json = spec.to_json();
        prop_assert_eq!(MessageSpec::from_json(&json).unwrap(), spec);
    }

    #[test]
    fn delivered_message_roundtrips(
        req in any::<u64>(),
        t0 in any::<u32>(),
        dt1 in any::<u32>(),
        dt2 in any::<u32>(),
        refusals in any::<u32>(),
    ) {
        let d = DeliveredMessage {
            request: RequestId::new(req),
            spec: MessageSpec::new(NodeId::new(0), NodeId::new(1), 4),
            requested_at: u64::from(t0),
            circuit_at: u64::from(t0) + u64::from(dt1),
            delivered_at: u64::from(t0) + u64::from(dt1) + u64::from(dt2),
            refusals,
        };
        let json = d.to_json();
        prop_assert_eq!(DeliveredMessage::from_json(&json).unwrap(), d);
        prop_assert_eq!(d.latency(), u64::from(dt1) + u64::from(dt2));
        prop_assert_eq!(d.setup_latency(), u64::from(dt1));
    }

    #[test]
    fn config_roundtrips(
        n in 2u32..10_000,
        k in 1u16..512,
        compaction in any::<bool>(),
        early in any::<bool>(),
        timeout in proptest::option::of(1u64..100_000),
        backoff in 0u64..10_000,
        window in proptest::option::of(1u32..1_000),
    ) {
        let mut b = RmbConfig::builder(n, k)
            .compaction(compaction)
            .early_compaction(early)
            .retry_backoff(backoff)
            .ack_mode(match window {
                Some(w) => AckMode::Windowed { window: w },
                None => AckMode::Unlimited,
            })
            .insertion(InsertionPolicy::TopBusOnly);
        if let Some(t) = timeout {
            b = b.head_timeout(t);
        }
        let cfg = b.build().unwrap();
        let json = cfg.to_json();
        prop_assert_eq!(RmbConfig::from_json(&json).unwrap(), cfg);
        prop_assert_eq!(cfg.top_bus(), BusIndex::new(k - 1));
    }
}
