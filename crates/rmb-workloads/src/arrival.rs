//! Arrival processes for open-loop load sweeps.

use rmb_sim::{EventQueue, SimRng, Tick};
use rmb_types::{MessageSpec, NodeId};

/// Generates message injection times for an open-loop experiment.
pub trait ArrivalProcess {
    /// Produces the message stream for `ticks` simulated ticks on a ring
    /// of `n` nodes, with message bodies drawn by `flits`.
    fn generate(
        &self,
        n: u32,
        ticks: u64,
        rng: &mut SimRng,
        flits: &mut dyn FnMut(&mut SimRng) -> u32,
    ) -> Vec<MessageSpec>;
}

/// Each node independently starts a new message with probability `p` per
/// tick, to a uniformly random other node — the standard Bernoulli
/// injection process for interconnect load sweeps.
///
/// # Examples
///
/// ```
/// use rmb_workloads::{ArrivalProcess, BernoulliArrivals};
/// use rmb_sim::SimRng;
///
/// let arr = BernoulliArrivals::new(0.1);
/// let mut rng = SimRng::seed(1);
/// let msgs = arr.generate(8, 100, &mut rng, &mut |_| 4);
/// assert!(!msgs.is_empty());
/// assert!(msgs.iter().all(|m| m.source != m.destination));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BernoulliArrivals {
    p: f64,
}

impl BernoulliArrivals {
    /// Creates a process with per-node per-tick injection probability `p`
    /// (clamped to `[0, 1]`).
    pub fn new(p: f64) -> Self {
        BernoulliArrivals { p: p.clamp(0.0, 1.0) }
    }

    /// The injection probability.
    pub const fn rate(&self) -> f64 {
        self.p
    }
}

impl ArrivalProcess for BernoulliArrivals {
    fn generate(
        &self,
        n: u32,
        ticks: u64,
        rng: &mut SimRng,
        flits: &mut dyn FnMut(&mut SimRng) -> u32,
    ) -> Vec<MessageSpec> {
        assert!(n >= 2, "need at least two nodes");
        // Geometric gap sampling: equivalent to per-tick Bernoulli but
        // O(messages) instead of O(nodes * ticks). The per-node streams
        // are merged chronologically through the event queue (stable FIFO
        // within a tick).
        let mut queue = EventQueue::new();
        for node in 0..n {
            let mut t = rng.geometric_gap(self.p).saturating_sub(1);
            while t < ticks {
                let dst = {
                    let r = rng.index((n - 1) as usize).expect("n >= 2") as u32;
                    if r >= node {
                        r + 1
                    } else {
                        r
                    }
                };
                let body = flits(rng);
                queue.schedule(
                    Tick::new(t),
                    MessageSpec::new(NodeId::new(node), NodeId::new(dst), body).at(t),
                );
                t = t.saturating_add(rng.geometric_gap(self.p));
            }
        }
        std::iter::from_fn(|| queue.pop().map(|(_, m)| m)).collect()
    }
}

/// A per-node stream of inter-arrival gaps, for open-loop serving drivers
/// that generate load *online* (one gap at a time, riding a timing wheel)
/// rather than materialising a whole batch up front.
///
/// Unlike [`ArrivalProcess::generate`], which returns a complete sorted
/// message list, an `ArrivalStream` is consulted lazily: every time node
/// `node` fires, the driver asks for the gap to that node's *next*
/// arrival. This keeps memory independent of run length — a billion-tick
/// soak holds one pending arrival per node, not a billion specs.
///
/// Gaps are in ticks and at least 1 (a node submits at most one new
/// message per tick). Implementations must be deterministic given the
/// caller's `SimRng`.
pub trait ArrivalStream {
    /// Ticks from the current arrival at `node` to its next one (>= 1).
    fn next_gap(&mut self, node: u32, rng: &mut SimRng) -> u64;

    /// Short label for reports, e.g. `"poisson"`.
    fn label(&self) -> &'static str;
}

/// Memoryless arrivals: every gap is geometric with per-tick rate `p`,
/// the streaming twin of [`BernoulliArrivals`] (a discrete-time Poisson
/// process).
///
/// # Examples
///
/// ```
/// use rmb_workloads::{ArrivalStream, PoissonStream};
/// use rmb_sim::SimRng;
///
/// let mut s = PoissonStream::new(0.1);
/// let mut rng = SimRng::seed(1);
/// let gap = s.next_gap(0, &mut rng);
/// assert!(gap >= 1);
/// assert_eq!(s.label(), "poisson");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoissonStream {
    p: f64,
}

impl PoissonStream {
    /// Creates a stream with per-node per-tick arrival probability `p`
    /// (clamped to `[1e-12, 1]` — a zero rate would mean an infinite gap).
    pub fn new(p: f64) -> Self {
        PoissonStream {
            p: p.clamp(1e-12, 1.0),
        }
    }

    /// The per-tick arrival probability.
    pub const fn rate(&self) -> f64 {
        self.p
    }
}

impl ArrivalStream for PoissonStream {
    fn next_gap(&mut self, _node: u32, rng: &mut SimRng) -> u64 {
        rng.geometric_gap(self.p).max(1)
    }

    fn label(&self) -> &'static str {
        "poisson"
    }
}

/// Bursty on/off arrivals: each node alternates between a geometric-length
/// burst of closely spaced messages and a long idle gap, modelling the
/// clumped traffic that stresses admission control far harder than a
/// memoryless process at the same mean rate.
///
/// The stream is parameterised to *match the mean rate* of a
/// [`PoissonStream`] with the same `p`: bursts of mean length `burst_len`
/// arrive with intra-burst gaps of mean `1/p_on`, separated by off gaps
/// sized so the long-run rate is `p`. The driver can therefore sweep the
/// same offered-load axis for both processes.
///
/// # Examples
///
/// ```
/// use rmb_workloads::{ArrivalStream, BurstyStream};
/// use rmb_sim::SimRng;
///
/// let mut s = BurstyStream::new(0.02, 8);
/// let mut rng = SimRng::seed(1);
/// assert!(s.next_gap(3, &mut rng) >= 1);
/// assert_eq!(s.label(), "bursty");
/// ```
#[derive(Debug, Clone)]
pub struct BurstyStream {
    /// Target long-run per-tick rate.
    p: f64,
    /// Mean messages per burst.
    burst_len: u32,
    /// Intra-burst per-tick rate (dense: mean gap 2 ticks).
    p_on: f64,
    /// Mean off gap between bursts, derived so the long-run rate is `p`.
    off_gap: f64,
    /// Messages left in the current burst, per node (lazily sized).
    left: Vec<u32>,
}

impl BurstyStream {
    /// Creates a bursty stream with long-run rate `p` and mean burst
    /// length `burst_len` (at least 1).
    pub fn new(p: f64, burst_len: u32) -> Self {
        let p = p.clamp(1e-12, 0.5);
        let burst_len = burst_len.max(1);
        let p_on = 0.5;
        // Long-run rate: burst_len messages per (burst_len / p_on + off_gap)
        // ticks. Solve for off_gap; clamp at 1 so saturating rates stay
        // well-defined (they just stop being bursty).
        let off_gap = (f64::from(burst_len) / p - f64::from(burst_len) / p_on).max(1.0);
        BurstyStream {
            p,
            burst_len,
            p_on,
            off_gap,
            left: Vec::new(),
        }
    }

    /// The target long-run per-tick rate.
    pub const fn rate(&self) -> f64 {
        self.p
    }

    /// Mean messages per burst.
    pub const fn burst_len(&self) -> u32 {
        self.burst_len
    }
}

impl ArrivalStream for BurstyStream {
    fn next_gap(&mut self, node: u32, rng: &mut SimRng) -> u64 {
        let node = node as usize;
        if self.left.len() <= node {
            self.left.resize(node + 1, 0);
        }
        if self.left[node] == 0 {
            // Start a new burst after an off period. Burst length is
            // geometric with mean `burst_len`; the off gap is geometric
            // with mean `off_gap`.
            let len = rng.geometric_gap(1.0 / f64::from(self.burst_len)) as u32;
            self.left[node] = len.max(1);
            rng.geometric_gap(1.0 / self.off_gap).max(1)
        } else {
            self.left[node] -= 1;
            rng.geometric_gap(self.p_on).max(1)
        }
    }

    fn label(&self) -> &'static str {
        "bursty"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_matches_expectation() {
        let arr = BernoulliArrivals::new(0.05);
        let mut rng = SimRng::seed(9);
        let ticks = 20_000;
        let n = 16;
        let msgs = arr.generate(n, ticks, &mut rng, &mut |_| 1);
        let expected = 0.05 * ticks as f64 * n as f64;
        let got = msgs.len() as f64;
        assert!(
            (got - expected).abs() < 0.1 * expected,
            "got {got}, expected about {expected}"
        );
    }

    #[test]
    fn zero_rate_generates_nothing() {
        let arr = BernoulliArrivals::new(0.0);
        let mut rng = SimRng::seed(1);
        assert!(arr.generate(8, 1000, &mut rng, &mut |_| 1).is_empty());
    }

    #[test]
    fn rate_is_clamped() {
        assert_eq!(BernoulliArrivals::new(7.0).rate(), 1.0);
        assert_eq!(BernoulliArrivals::new(-1.0).rate(), 0.0);
    }

    #[test]
    fn destinations_are_uniform_over_others() {
        let arr = BernoulliArrivals::new(0.2);
        let mut rng = SimRng::seed(5);
        let msgs = arr.generate(4, 50_000, &mut rng, &mut |_| 1);
        let mut hist = [0u32; 4];
        for m in &msgs {
            assert_ne!(m.source, m.destination);
            hist[m.destination.as_usize()] += 1;
        }
        // Every node is someone's destination with roughly equal frequency.
        let total: u32 = hist.iter().sum();
        for &h in &hist {
            let share = h as f64 / total as f64;
            assert!((share - 0.25).abs() < 0.03, "share {share}");
        }
    }

    #[test]
    fn sorted_by_injection_time() {
        let arr = BernoulliArrivals::new(0.1);
        let mut rng = SimRng::seed(2);
        let msgs = arr.generate(8, 2_000, &mut rng, &mut |_| 1);
        assert!(msgs.windows(2).all(|w| w[0].inject_at <= w[1].inject_at));
    }

    /// Long-run arrival rate of a stream, measured by walking one node's
    /// gap sequence.
    fn measured_rate(stream: &mut dyn ArrivalStream, seed: u64, events: u64) -> f64 {
        let mut rng = SimRng::seed(seed);
        let mut t = 0u64;
        for _ in 0..events {
            t += stream.next_gap(0, &mut rng);
        }
        events as f64 / t as f64
    }

    #[test]
    fn poisson_stream_matches_target_rate() {
        for &p in &[0.01, 0.05, 0.2] {
            let got = measured_rate(&mut PoissonStream::new(p), 11, 50_000);
            assert!((got - p).abs() < 0.05 * p, "target {p}, measured {got}");
        }
    }

    #[test]
    fn bursty_stream_matches_target_mean_rate() {
        for &p in &[0.01, 0.05] {
            let got = measured_rate(&mut BurstyStream::new(p, 8), 13, 50_000);
            assert!((got - p).abs() < 0.15 * p, "target {p}, measured {got}");
        }
    }

    #[test]
    fn bursty_stream_actually_clumps() {
        // At the same mean rate, the bursty stream's gap variance must
        // dwarf the Poisson stream's: lots of short gaps, a few huge ones.
        let stats = |stream: &mut dyn ArrivalStream| {
            let mut rng = SimRng::seed(17);
            let gaps: Vec<u64> = (0..20_000).map(|_| stream.next_gap(0, &mut rng)).collect();
            let mean = gaps.iter().sum::<u64>() as f64 / gaps.len() as f64;
            let var = gaps
                .iter()
                .map(|&g| (g as f64 - mean).powi(2))
                .sum::<f64>()
                / gaps.len() as f64;
            var / (mean * mean) // squared coefficient of variation
        };
        let poisson_cv2 = stats(&mut PoissonStream::new(0.02));
        let bursty_cv2 = stats(&mut BurstyStream::new(0.02, 8));
        assert!(
            bursty_cv2 > 2.0 * poisson_cv2,
            "bursty cv^2 {bursty_cv2} vs poisson {poisson_cv2}"
        );
    }

    #[test]
    fn streams_gaps_are_positive_and_deterministic() {
        let run = || {
            let mut s = BurstyStream::new(0.03, 4);
            let mut rng = SimRng::seed(23);
            (0..1000)
                .map(|i| s.next_gap(i % 5, &mut rng))
                .collect::<Vec<_>>()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(a.iter().all(|&g| g >= 1));
    }

    #[test]
    fn flit_sampler_is_consulted() {
        let arr = BernoulliArrivals::new(0.1);
        let mut rng = SimRng::seed(3);
        let msgs = arr.generate(8, 1_000, &mut rng, &mut |r| {
            16 + (r.index(16).unwrap() as u32)
        });
        assert!(msgs.iter().all(|m| (16..32).contains(&m.data_flits)));
    }
}
