//! Arrival processes for open-loop load sweeps.

use rmb_sim::{EventQueue, SimRng, Tick};
use rmb_types::{MessageSpec, NodeId};

/// Generates message injection times for an open-loop experiment.
pub trait ArrivalProcess {
    /// Produces the message stream for `ticks` simulated ticks on a ring
    /// of `n` nodes, with message bodies drawn by `flits`.
    fn generate(
        &self,
        n: u32,
        ticks: u64,
        rng: &mut SimRng,
        flits: &mut dyn FnMut(&mut SimRng) -> u32,
    ) -> Vec<MessageSpec>;
}

/// Each node independently starts a new message with probability `p` per
/// tick, to a uniformly random other node — the standard Bernoulli
/// injection process for interconnect load sweeps.
///
/// # Examples
///
/// ```
/// use rmb_workloads::{ArrivalProcess, BernoulliArrivals};
/// use rmb_sim::SimRng;
///
/// let arr = BernoulliArrivals::new(0.1);
/// let mut rng = SimRng::seed(1);
/// let msgs = arr.generate(8, 100, &mut rng, &mut |_| 4);
/// assert!(!msgs.is_empty());
/// assert!(msgs.iter().all(|m| m.source != m.destination));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BernoulliArrivals {
    p: f64,
}

impl BernoulliArrivals {
    /// Creates a process with per-node per-tick injection probability `p`
    /// (clamped to `[0, 1]`).
    pub fn new(p: f64) -> Self {
        BernoulliArrivals { p: p.clamp(0.0, 1.0) }
    }

    /// The injection probability.
    pub const fn rate(&self) -> f64 {
        self.p
    }
}

impl ArrivalProcess for BernoulliArrivals {
    fn generate(
        &self,
        n: u32,
        ticks: u64,
        rng: &mut SimRng,
        flits: &mut dyn FnMut(&mut SimRng) -> u32,
    ) -> Vec<MessageSpec> {
        assert!(n >= 2, "need at least two nodes");
        // Geometric gap sampling: equivalent to per-tick Bernoulli but
        // O(messages) instead of O(nodes * ticks). The per-node streams
        // are merged chronologically through the event queue (stable FIFO
        // within a tick).
        let mut queue = EventQueue::new();
        for node in 0..n {
            let mut t = rng.geometric_gap(self.p).saturating_sub(1);
            while t < ticks {
                let dst = {
                    let r = rng.index((n - 1) as usize).expect("n >= 2") as u32;
                    if r >= node {
                        r + 1
                    } else {
                        r
                    }
                };
                let body = flits(rng);
                queue.schedule(
                    Tick::new(t),
                    MessageSpec::new(NodeId::new(node), NodeId::new(dst), body).at(t),
                );
                t = t.saturating_add(rng.geometric_gap(self.p));
            }
        }
        std::iter::from_fn(|| queue.pop().map(|(_, m)| m)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_matches_expectation() {
        let arr = BernoulliArrivals::new(0.05);
        let mut rng = SimRng::seed(9);
        let ticks = 20_000;
        let n = 16;
        let msgs = arr.generate(n, ticks, &mut rng, &mut |_| 1);
        let expected = 0.05 * ticks as f64 * n as f64;
        let got = msgs.len() as f64;
        assert!(
            (got - expected).abs() < 0.1 * expected,
            "got {got}, expected about {expected}"
        );
    }

    #[test]
    fn zero_rate_generates_nothing() {
        let arr = BernoulliArrivals::new(0.0);
        let mut rng = SimRng::seed(1);
        assert!(arr.generate(8, 1000, &mut rng, &mut |_| 1).is_empty());
    }

    #[test]
    fn rate_is_clamped() {
        assert_eq!(BernoulliArrivals::new(7.0).rate(), 1.0);
        assert_eq!(BernoulliArrivals::new(-1.0).rate(), 0.0);
    }

    #[test]
    fn destinations_are_uniform_over_others() {
        let arr = BernoulliArrivals::new(0.2);
        let mut rng = SimRng::seed(5);
        let msgs = arr.generate(4, 50_000, &mut rng, &mut |_| 1);
        let mut hist = [0u32; 4];
        for m in &msgs {
            assert_ne!(m.source, m.destination);
            hist[m.destination.as_usize()] += 1;
        }
        // Every node is someone's destination with roughly equal frequency.
        let total: u32 = hist.iter().sum();
        for &h in &hist {
            let share = h as f64 / total as f64;
            assert!((share - 0.25).abs() < 0.03, "share {share}");
        }
    }

    #[test]
    fn sorted_by_injection_time() {
        let arr = BernoulliArrivals::new(0.1);
        let mut rng = SimRng::seed(2);
        let msgs = arr.generate(8, 2_000, &mut rng, &mut |_| 1);
        assert!(msgs.windows(2).all(|w| w[0].inject_at <= w[1].inject_at));
    }

    #[test]
    fn flit_sampler_is_consulted() {
        let arr = BernoulliArrivals::new(0.1);
        let mut rng = SimRng::seed(3);
        let msgs = arr.generate(8, 1_000, &mut rng, &mut |r| {
            16 + (r.index(16).unwrap() as u32)
        });
        assert!(msgs.iter().all(|m| (16..32).contains(&m.data_flits)));
    }
}
