//! MPI-style collective exchange patterns as message-batch generators.
//!
//! Collectives are the workloads parallel programs actually run:
//! all-to-all personalized exchange (the transpose/FFT pattern) and
//! nearest-neighbour halo exchange (stencil codes). Both are fully
//! deterministic — no RNG — so a scenario naming one pins its message
//! set by construction, and both are expressed over flat node indices
//! `0..n`, which every batch network in the workspace (flat ring, grid,
//! lattice, wormhole torus) accepts directly.

use rmb_types::{MessageSpec, NodeId};

/// All-to-all personalized exchange over `n` nodes: `n - 1` rounds, with
/// round `r` (1-based) sending one `flits`-flit message from every node
/// `s` to `(s + r) mod n` — the classic shifted-permutation schedule, so
/// every round is a full permutation and every ordered pair is covered
/// exactly once. Round `r` injects at `(r - 1) * stagger`; `stagger = 0`
/// offers the whole exchange at once.
///
/// # Examples
///
/// ```
/// use rmb_workloads::all_to_all;
///
/// let msgs = all_to_all(4, 8, 10);
/// assert_eq!(msgs.len(), 4 * 3); // every ordered pair once
/// assert!(msgs.iter().all(|m| m.source != m.destination));
/// assert_eq!(msgs.last().unwrap().inject_at, 20); // round 3 of 3
/// ```
///
/// # Panics
///
/// Panics when `n < 2`.
pub fn all_to_all(n: u32, flits: u32, stagger: u64) -> Vec<MessageSpec> {
    assert!(n >= 2, "all-to-all needs at least two nodes");
    let mut out = Vec::with_capacity((n as usize) * (n as usize - 1));
    for round in 1..n {
        let at = u64::from(round - 1) * stagger;
        for s in 0..n {
            out.push(MessageSpec::new(NodeId::new(s), NodeId::new((s + round) % n), flits).at(at));
        }
    }
    out
}

/// Nearest-neighbour (halo) exchange over a ring of `n` nodes: each of
/// `rounds` rounds sends one `flits`-flit message from every node to both
/// of its ring neighbours, `(s + 1) mod n` and `(s + n - 1) mod n`. Round
/// `r` (0-based) injects at `r * stagger`.
///
/// On `n = 2` the two neighbours coincide, so each round sends one
/// message per node instead of two.
///
/// # Examples
///
/// ```
/// use rmb_workloads::nearest_neighbour;
///
/// let msgs = nearest_neighbour(8, 4, 2, 100);
/// assert_eq!(msgs.len(), 8 * 2 * 2);
/// assert!(msgs.iter().all(|m| m.inject_at == 0 || m.inject_at == 100));
/// ```
///
/// # Panics
///
/// Panics when `n < 2` or `rounds == 0`.
pub fn nearest_neighbour(n: u32, flits: u32, rounds: u32, stagger: u64) -> Vec<MessageSpec> {
    assert!(n >= 2, "nearest-neighbour needs at least two nodes");
    assert!(rounds >= 1, "nearest-neighbour needs at least one round");
    let per_node = if n == 2 { 1 } else { 2 };
    let mut out = Vec::with_capacity((n as usize) * per_node * rounds as usize);
    for round in 0..rounds {
        let at = u64::from(round) * stagger;
        for s in 0..n {
            out.push(MessageSpec::new(NodeId::new(s), NodeId::new((s + 1) % n), flits).at(at));
            if n > 2 {
                out.push(
                    MessageSpec::new(NodeId::new(s), NodeId::new((s + n - 1) % n), flits).at(at),
                );
            }
        }
    }
    out
}

/// Deterministic fixed-period arrivals for the open-loop driver: every
/// node fires exactly every `period` ticks, the BSP-style "everyone
/// exchanges on a barrier clock" pattern. The gap never consults the RNG,
/// so the arrival schedule is identical across seeds — only destination
/// choice (drawn by the driver) varies.
///
/// # Examples
///
/// ```
/// use rmb_workloads::{ArrivalStream, ExchangeStream};
/// use rmb_sim::SimRng;
///
/// let mut s = ExchangeStream::new(50);
/// let mut rng = SimRng::seed(1);
/// assert_eq!(s.next_gap(3, &mut rng), 50);
/// assert_eq!(s.label(), "exchange");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExchangeStream {
    period: u64,
}

impl ExchangeStream {
    /// Creates a stream firing every `period` ticks (clamped to at
    /// least 1).
    pub fn new(period: u64) -> Self {
        ExchangeStream {
            period: period.max(1),
        }
    }

    /// Ticks between successive arrivals at each node.
    pub const fn period(&self) -> u64 {
        self.period
    }
}

impl crate::ArrivalStream for ExchangeStream {
    fn next_gap(&mut self, _node: u32, _rng: &mut rmb_sim::SimRng) -> u64 {
        self.period
    }

    fn label(&self) -> &'static str {
        "exchange"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ArrivalStream;
    use rmb_sim::SimRng;
    use std::collections::HashSet;

    #[test]
    fn all_to_all_covers_every_ordered_pair_once() {
        let n = 6;
        let msgs = all_to_all(n, 4, 0);
        assert_eq!(msgs.len(), (n as usize) * (n as usize - 1));
        let pairs: HashSet<(u32, u32)> = msgs
            .iter()
            .map(|m| (m.source.index(), m.destination.index()))
            .collect();
        assert_eq!(pairs.len(), msgs.len(), "no duplicate pair");
        assert!(msgs.iter().all(|m| m.source != m.destination));
    }

    #[test]
    fn all_to_all_rounds_are_permutations() {
        let n = 5u32;
        let msgs = all_to_all(n, 1, 7);
        for round in 1..n {
            let at = u64::from(round - 1) * 7;
            let round_msgs: Vec<_> = msgs.iter().filter(|m| m.inject_at == at).collect();
            assert_eq!(round_msgs.len(), n as usize);
            let sources: HashSet<u32> = round_msgs.iter().map(|m| m.source.index()).collect();
            let dests: HashSet<u32> = round_msgs.iter().map(|m| m.destination.index()).collect();
            assert_eq!(sources.len(), n as usize);
            assert_eq!(dests.len(), n as usize);
        }
    }

    #[test]
    fn nearest_neighbour_targets_only_neighbours() {
        let n = 9u32;
        for m in nearest_neighbour(n, 2, 3, 11) {
            let s = m.source.index();
            let d = m.destination.index();
            assert!(d == (s + 1) % n || d == (s + n - 1) % n, "{s} -> {d}");
        }
    }

    #[test]
    fn nearest_neighbour_two_nodes_deduplicates() {
        let msgs = nearest_neighbour(2, 1, 1, 0);
        assert_eq!(msgs.len(), 2);
    }

    #[test]
    fn exchange_stream_is_rng_independent() {
        let mut s = ExchangeStream::new(25);
        let mut a = SimRng::seed(1);
        let mut b = SimRng::seed(999);
        for node in 0..10 {
            assert_eq!(s.next_gap(node, &mut a), 25);
            assert_eq!(s.next_gap(node, &mut b), 25);
        }
    }

    #[test]
    fn exchange_period_is_clamped_positive() {
        assert_eq!(ExchangeStream::new(0).period(), 1);
    }
}
