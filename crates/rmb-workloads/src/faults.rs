//! Random fault schedules for resilience experiments.
//!
//! The fault-tolerance sweep needs reproducible schedules in which a
//! controlled *fraction* of the physical segments fails at random times.
//! This module turns (fraction, horizon, outage) knobs into a concrete
//! [`FaultPlan`] using the same seeded RNG discipline as the workload
//! generators: same seed, same plan, on every platform.

use rmb_sim::SimRng;
use rmb_types::{BusIndex, FaultPlan, NodeId};

/// Parameters of a random segment-fault schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultScenario {
    /// Fraction of the `n * k` physical segments to fail (clamped to
    /// `0.0..=1.0`); the count is rounded to the nearest whole segment.
    pub fraction: f64,
    /// Fault activation times are drawn uniformly from `0..horizon`.
    pub horizon: u64,
    /// Outage length of each fault; `None` makes every fault permanent.
    pub outage: Option<u64>,
}

impl FaultScenario {
    /// Number of segments this scenario fails on an `n * k` ring.
    pub fn segment_count(&self, n: u32, k: u16) -> usize {
        let total = n as usize * k as usize;
        let want = (self.fraction.clamp(0.0, 1.0) * total as f64).round() as usize;
        want.min(total)
    }

    /// Draws the concrete plan: `segment_count` *distinct* segments, each
    /// stuck from a uniform tick in `0..horizon`, repaired `outage` ticks
    /// later (or never).
    pub fn draw(&self, n: u32, k: u16, rng: &mut SimRng) -> FaultPlan {
        let total = n as usize * k as usize;
        let mut segments: Vec<usize> = (0..total).collect();
        rng.shuffle(&mut segments);
        let mut plan = FaultPlan::new();
        for &idx in segments.iter().take(self.segment_count(n, k)) {
            let hop = NodeId::new((idx / k as usize) as u32);
            let bus = BusIndex::new((idx % k as usize) as u16);
            let at = rng.index(self.horizon.max(1) as usize).unwrap_or(0) as u64;
            plan = plan.segment_stuck(at, hop, bus, self.outage.map(|o| at + o.max(1)));
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_round_and_clamp() {
        let s = |fraction| FaultScenario { fraction, horizon: 100, outage: None };
        assert_eq!(s(0.0).segment_count(8, 4), 0);
        assert_eq!(s(0.5).segment_count(8, 4), 16);
        assert_eq!(s(0.2).segment_count(8, 2), 3, "0.2 * 16 = 3.2 rounds to 3");
        assert_eq!(s(2.0).segment_count(8, 2), 16, "clamped to every segment");
    }

    #[test]
    fn draw_is_deterministic_and_valid() {
        let scenario = FaultScenario { fraction: 0.25, horizon: 500, outage: Some(200) };
        let a = scenario.draw(10, 3, &mut SimRng::seed(42));
        let b = scenario.draw(10, 3, &mut SimRng::seed(42));
        assert_eq!(a, b, "same seed, same plan");
        assert_eq!(a.events().len(), scenario.segment_count(10, 3));
        a.validate(10, 3).unwrap();
        // Distinct segments.
        let mut seen: Vec<_> = a
            .events()
            .iter()
            .map(|e| format!("{}", e.kind))
            .collect();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), a.events().len());
        // Repairs always strictly after activation.
        for e in a.events() {
            assert!(e.repair_at.unwrap() > e.at);
        }
    }

    #[test]
    fn permanent_scenario_has_no_repairs() {
        let scenario = FaultScenario { fraction: 0.5, horizon: 100, outage: None };
        let plan = scenario.draw(6, 2, &mut SimRng::seed(7));
        assert!(plan.events().iter().all(|e| e.repair_at.is_none()));
    }
}
