//! Workload generation for the RMB reproduction.
//!
//! The paper frames its whole comparison (§3) around *k-permutations*:
//! sets of messages in which every node sends at most one message and
//! receives at most one message. This crate provides the classic
//! permutation families of the era, arrival processes for open-loop load
//! sweeps, and message-size distributions — everything the experiment
//! harness feeds to the RMB simulator and the baseline networks.
//!
//! # Examples
//!
//! ```
//! use rmb_workloads::{Permutation, PermutationKind};
//! use rmb_sim::SimRng;
//!
//! let mut rng = SimRng::seed(7);
//! let p = Permutation::generate(PermutationKind::BitReversal, 8, &mut rng);
//! assert_eq!(p.apply(1), 4); // 001 reversed over 3 bits = 100
//! assert!(p.is_permutation());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arrival;
mod collective;
mod faults;
mod locality;
mod permutation;
mod sizes;
mod suite;
mod trace;

pub use arrival::{ArrivalProcess, ArrivalStream, BernoulliArrivals, BurstyStream, PoissonStream};
pub use collective::{all_to_all, nearest_neighbour, ExchangeStream};
pub use faults::FaultScenario;
pub use locality::LocalityTraffic;
pub use permutation::{Permutation, PermutationKind};
pub use sizes::SizeDistribution;
pub use suite::{WorkloadConfig, WorkloadSuite};
pub use trace::{canonical_trace_order, decode_trace, encode_trace};
