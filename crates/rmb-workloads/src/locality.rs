//! Locality-parameterized traffic for hierarchical (multi-ring) RMBs.
//!
//! Hierarchical composition only pays off when most traffic stays on its
//! local ring; this generator makes that a knob. A fraction `locality`
//! of messages pick their destination on the source's own ring, the rest
//! pick a uniformly random *other* ring — bridge positions are never
//! endpoints. The same seeded-RNG discipline as the other generators
//! applies: same seed, same workload, on every platform.

use rmb_sim::SimRng;
use rmb_types::{HierMessageSpec, NodeAddr, NodeId};

/// Generator of random hierarchical traffic with tunable ring locality.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalityTraffic {
    /// Number of local rings.
    pub rings: u32,
    /// Nodes per local ring, bridge included.
    pub nodes: u32,
    /// Bridge position on each local ring (excluded from endpoints).
    pub bridge: NodeId,
    /// Probability that a message stays on its source's ring (clamped to
    /// `0.0..=1.0`).
    pub locality: f64,
    /// Data flits per message.
    pub flits: u32,
}

impl LocalityTraffic {
    /// Generates `count` messages with injection times drawn uniformly
    /// from `0..spread.max(1)`.
    ///
    /// # Panics
    ///
    /// Panics when the topology has no valid endpoint pairs: fewer than
    /// two rings, or fewer than two non-bridge nodes per ring.
    pub fn generate(&self, count: usize, spread: u64, rng: &mut SimRng) -> Vec<HierMessageSpec> {
        assert!(self.rings >= 2, "a hierarchy needs at least 2 rings");
        assert!(
            self.nodes >= 3 && self.bridge.index() < self.nodes,
            "need at least two non-bridge nodes per ring"
        );
        let p = self.locality.clamp(0.0, 1.0);
        (0..count)
            .map(|_| {
                let src = NodeAddr::new(self.pick_ring(rng), self.pick_node(rng, None));
                let dst = if rng.chance(p) {
                    // Intra-ring: any other non-bridge node on the ring.
                    NodeAddr::new(src.ring, self.pick_node(rng, Some(src.node)))
                } else {
                    // Inter-ring: a uniformly random other ring.
                    let hop = 1 + rng.index(self.rings as usize - 1).unwrap_or(0) as u32;
                    NodeAddr::new((src.ring + hop) % self.rings, self.pick_node(rng, None))
                };
                let at = rng.index(spread.max(1) as usize).unwrap_or(0) as u64;
                HierMessageSpec::new(src, dst, self.flits).at(at)
            })
            .collect()
    }

    fn pick_ring(&self, rng: &mut SimRng) -> u32 {
        rng.index(self.rings as usize).unwrap_or(0) as u32
    }

    /// A uniformly random node on a ring, never the bridge and never
    /// `exclude`.
    fn pick_node(&self, rng: &mut SimRng, exclude: Option<NodeId>) -> NodeId {
        loop {
            let n = NodeId::new(rng.index(self.nodes as usize).unwrap_or(0) as u32);
            if n != self.bridge && Some(n) != exclude {
                return n;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traffic(locality: f64) -> LocalityTraffic {
        LocalityTraffic {
            rings: 4,
            nodes: 16,
            bridge: NodeId::new(0),
            locality,
            flits: 8,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let t = traffic(0.8);
        let a = t.generate(200, 500, &mut SimRng::seed(11));
        let b = t.generate(200, 500, &mut SimRng::seed(11));
        assert_eq!(a, b);
        assert_eq!(a.len(), 200);
    }

    #[test]
    fn endpoints_are_valid_and_never_bridges() {
        let t = traffic(0.5);
        for m in t.generate(500, 100, &mut SimRng::seed(3)) {
            assert!(m.source.ring < 4 && m.destination.ring < 4);
            assert!(m.source.node.index() < 16 && m.destination.node.index() < 16);
            assert_ne!(m.source.node, t.bridge);
            assert_ne!(m.destination.node, t.bridge);
            assert_ne!(m.source, m.destination);
            assert!(m.inject_at < 100);
            assert_eq!(m.data_flits, 8);
        }
    }

    #[test]
    fn locality_knob_controls_the_intra_fraction() {
        let mut rng = SimRng::seed(9);
        let all_local = traffic(1.0).generate(300, 100, &mut rng);
        assert!(all_local.iter().all(HierMessageSpec::is_intra_ring));

        let mut rng = SimRng::seed(9);
        let all_remote = traffic(0.0).generate(300, 100, &mut rng);
        assert!(all_remote.iter().all(|m| !m.is_intra_ring()));

        let mut rng = SimRng::seed(9);
        let mixed = traffic(0.8).generate(1000, 100, &mut rng);
        let intra = mixed.iter().filter(|m| m.is_intra_ring()).count();
        assert!(
            (700..900).contains(&intra),
            "~80% of 1000 should stay local, got {intra}"
        );
    }
}
