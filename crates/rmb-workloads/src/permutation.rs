//! Permutation families.
//!
//! These are the standard permutations interconnection papers of the era
//! evaluated against: random, rotation, reversal, bit-reversal, transpose,
//! perfect shuffle and butterfly, plus the hardest case for a one-way ring
//! (every node sends to the diametrically opposite node).

use rmb_sim::SimRng;
use rmb_types::{MessageSpec, NodeId};
use std::fmt;

/// A named permutation family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum PermutationKind {
    /// `π(i)` drawn uniformly from all permutations.
    Random,
    /// `π(i) = (i + d) mod N` — a rotation by `d`.
    Rotation(u32),
    /// `π(i) = (i + N/2) mod N` — the longest-path rotation, the worst
    /// case for a unidirectional ring.
    Opposite,
    /// `π(i) = N - 1 - i` — index reversal.
    Reversal,
    /// Reverse the `log2 N` address bits (requires `N` a power of two).
    BitReversal,
    /// Swap the high and low halves of the address bits — the matrix
    /// transpose permutation (requires `N` an even power of two).
    Transpose,
    /// Left-rotate the address bits by one — the perfect shuffle
    /// (requires `N` a power of two).
    PerfectShuffle,
    /// Complement the address bits — the butterfly / exchange permutation
    /// (requires `N` a power of two).
    BitComplement,
}

impl PermutationKind {
    /// All kinds that apply to any ring size.
    pub const GENERAL: [PermutationKind; 4] = [
        PermutationKind::Random,
        PermutationKind::Rotation(1),
        PermutationKind::Opposite,
        PermutationKind::Reversal,
    ];

    /// All kinds requiring `N` to be a power of two.
    pub const POWER_OF_TWO: [PermutationKind; 4] = [
        PermutationKind::BitReversal,
        PermutationKind::Transpose,
        PermutationKind::PerfectShuffle,
        PermutationKind::BitComplement,
    ];

    /// `true` when the kind only works on power-of-two ring sizes.
    pub const fn needs_power_of_two(self) -> bool {
        matches!(
            self,
            PermutationKind::BitReversal
                | PermutationKind::Transpose
                | PermutationKind::PerfectShuffle
                | PermutationKind::BitComplement
        )
    }
}

impl fmt::Display for PermutationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PermutationKind::Random => f.write_str("random"),
            PermutationKind::Rotation(d) => write!(f, "rotation({d})"),
            PermutationKind::Opposite => f.write_str("opposite"),
            PermutationKind::Reversal => f.write_str("reversal"),
            PermutationKind::BitReversal => f.write_str("bit-reversal"),
            PermutationKind::Transpose => f.write_str("transpose"),
            PermutationKind::PerfectShuffle => f.write_str("perfect-shuffle"),
            PermutationKind::BitComplement => f.write_str("bit-complement"),
        }
    }
}

/// A concrete permutation over `0..N`.
///
/// Fixed points (`π(i) = i`) produce no message — a node does not send to
/// itself — so [`messages`](Self::messages) may return fewer than `N`
/// specs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    kind: PermutationKind,
    map: Vec<u32>,
}

impl Permutation {
    /// Generates a permutation of the given family over `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, or if the kind requires a power-of-two `n`
    /// (see [`PermutationKind::needs_power_of_two`]) and `n` is not one,
    /// or if `Transpose` is asked for an odd number of address bits.
    pub fn generate(kind: PermutationKind, n: u32, rng: &mut SimRng) -> Self {
        assert!(n > 0, "permutation over an empty ring");
        if kind.needs_power_of_two() {
            assert!(n.is_power_of_two(), "{kind} requires a power-of-two N");
        }
        let bits = n.trailing_zeros();
        let map: Vec<u32> = match kind {
            PermutationKind::Random => {
                let mut v: Vec<u32> = (0..n).collect();
                rng.shuffle(&mut v);
                v
            }
            PermutationKind::Rotation(d) => (0..n).map(|i| (i + d) % n).collect(),
            PermutationKind::Opposite => (0..n).map(|i| (i + n / 2) % n).collect(),
            PermutationKind::Reversal => (0..n).map(|i| n - 1 - i).collect(),
            PermutationKind::BitReversal => (0..n).map(|i| i.reverse_bits() >> (32 - bits)).collect(),
            PermutationKind::Transpose => {
                assert!(bits.is_multiple_of(2), "transpose needs an even number of address bits");
                let half = bits / 2;
                let low_mask = (1u32 << half) - 1;
                (0..n)
                    .map(|i| ((i & low_mask) << half) | (i >> half))
                    .collect()
            }
            PermutationKind::PerfectShuffle => (0..n)
                .map(|i| ((i << 1) | (i >> (bits - 1))) & (n - 1))
                .collect(),
            PermutationKind::BitComplement => (0..n).map(|i| !i & (n - 1)).collect(),
        };
        Permutation { kind, map }
    }

    /// Builds a permutation from an explicit map.
    ///
    /// # Panics
    ///
    /// Panics if `map` is not a permutation of `0..map.len()`.
    pub fn from_map(map: Vec<u32>) -> Self {
        let p = Permutation {
            kind: PermutationKind::Random,
            map,
        };
        assert!(p.is_permutation(), "map is not a permutation");
        p
    }

    /// The family this permutation was drawn from.
    pub const fn kind(&self) -> PermutationKind {
        self.kind
    }

    /// Number of elements.
    pub fn len(&self) -> u32 {
        self.map.len() as u32
    }

    /// `true` for the empty permutation (never produced by `generate`).
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The image of `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn apply(&self, i: u32) -> u32 {
        self.map[i as usize]
    }

    /// Validates bijectivity (used by tests and `from_map`).
    pub fn is_permutation(&self) -> bool {
        let n = self.map.len();
        let mut seen = vec![false; n];
        for &v in &self.map {
            let Some(slot) = seen.get_mut(v as usize) else {
                return false;
            };
            if *slot {
                return false;
            }
            *slot = true;
        }
        true
    }

    /// Number of fixed points (`π(i) = i`), which yield no message.
    pub fn fixed_points(&self) -> u32 {
        self.map
            .iter()
            .enumerate()
            .filter(|(i, &v)| *i as u32 == v)
            .count() as u32
    }

    /// Converts the permutation into message specs with `flits` data flits
    /// each, all injected at tick 0. Fixed points are skipped.
    pub fn messages(&self, flits: u32) -> Vec<MessageSpec> {
        self.map
            .iter()
            .enumerate()
            .filter(|(i, &d)| *i as u32 != d)
            .map(|(s, &d)| MessageSpec::new(NodeId::new(s as u32), NodeId::new(d), flits))
            .collect()
    }

    /// Total clockwise link load this permutation places on a one-way ring
    /// of its size: the sum of clockwise distances.
    pub fn total_ring_distance(&self) -> u64 {
        let n = self.map.len() as u64;
        self.map
            .iter()
            .enumerate()
            .map(|(s, &d)| (u64::from(d) + n - s as u64) % n)
            .sum()
    }

    /// The maximum number of messages crossing any single clockwise ring
    /// hop — the congestion lower bound for ring routing.
    pub fn max_ring_congestion(&self) -> u32 {
        let n = self.map.len();
        let mut load = vec![0u32; n];
        for (s, &d) in self.map.iter().enumerate() {
            let mut at = s;
            while at as u32 != d {
                load[at] += 1;
                at = (at + 1) % n;
            }
        }
        load.into_iter().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed(11)
    }

    #[test]
    fn all_families_are_bijective() {
        for kind in PermutationKind::GENERAL
            .into_iter()
            .chain(PermutationKind::POWER_OF_TWO)
        {
            let p = Permutation::generate(kind, 16, &mut rng());
            assert!(p.is_permutation(), "{kind}");
            assert_eq!(p.len(), 16);
        }
    }

    #[test]
    fn bit_reversal_matches_hand_computation() {
        let p = Permutation::generate(PermutationKind::BitReversal, 8, &mut rng());
        // 3 bits: 0->0, 1->4, 2->2, 3->6, 4->1, 5->5, 6->3, 7->7.
        assert_eq!(
            (0..8).map(|i| p.apply(i)).collect::<Vec<_>>(),
            vec![0, 4, 2, 6, 1, 5, 3, 7]
        );
    }

    #[test]
    fn transpose_matches_hand_computation() {
        let p = Permutation::generate(PermutationKind::Transpose, 16, &mut rng());
        // 4 bits, halves swapped: i = hi*4 + lo -> lo*4 + hi.
        assert_eq!(p.apply(0b0111), 0b1101);
        assert_eq!(p.apply(0b0001), 0b0100);
        assert_eq!(p.apply(0b1111), 0b1111);
    }

    #[test]
    fn perfect_shuffle_rotates_bits() {
        let p = Permutation::generate(PermutationKind::PerfectShuffle, 8, &mut rng());
        assert_eq!(p.apply(0b100), 0b001);
        assert_eq!(p.apply(0b011), 0b110);
    }

    #[test]
    fn bit_complement_and_reversal() {
        let p = Permutation::generate(PermutationKind::BitComplement, 8, &mut rng());
        assert_eq!(p.apply(0), 7);
        assert_eq!(p.apply(5), 2);
        let r = Permutation::generate(PermutationKind::Reversal, 5, &mut rng());
        assert_eq!(r.apply(0), 4);
        assert_eq!(r.apply(4), 0);
    }

    #[test]
    fn opposite_is_half_rotation() {
        let p = Permutation::generate(PermutationKind::Opposite, 10, &mut rng());
        assert_eq!(p.apply(3), 8);
        assert_eq!(p.apply(8), 3);
        assert_eq!(p.fixed_points(), 0);
    }

    #[test]
    fn rotation_by_zero_is_all_fixed_points() {
        let p = Permutation::generate(PermutationKind::Rotation(0), 6, &mut rng());
        assert_eq!(p.fixed_points(), 6);
        assert!(p.messages(4).is_empty());
    }

    #[test]
    fn random_is_seed_deterministic() {
        let a = Permutation::generate(PermutationKind::Random, 32, &mut SimRng::seed(3));
        let b = Permutation::generate(PermutationKind::Random, 32, &mut SimRng::seed(3));
        assert_eq!(a, b);
    }

    #[test]
    fn messages_skip_fixed_points_and_carry_flits() {
        let p = Permutation::from_map(vec![1, 0, 2]);
        let msgs = p.messages(9);
        assert_eq!(msgs.len(), 2);
        assert!(msgs.iter().all(|m| m.data_flits == 9));
        assert!(msgs.iter().all(|m| m.source != m.destination));
    }

    #[test]
    fn ring_metrics() {
        // 0->2, 1->0, 2->1 on N=3: distances 2, 2, 2; total 6.
        let p = Permutation::from_map(vec![2, 0, 1]);
        assert_eq!(p.total_ring_distance(), 6);
        assert_eq!(p.max_ring_congestion(), 2);
        // Identity: zero load.
        let id = Permutation::from_map(vec![0, 1, 2]);
        assert_eq!(id.total_ring_distance(), 0);
        assert_eq!(id.max_ring_congestion(), 0);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn bit_reversal_rejects_non_power_of_two() {
        let _ = Permutation::generate(PermutationKind::BitReversal, 12, &mut rng());
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn from_map_rejects_duplicates() {
        let _ = Permutation::from_map(vec![0, 0, 1]);
    }
}
