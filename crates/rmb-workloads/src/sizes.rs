//! Message-size (data-flit count) distributions.

use rmb_sim::SimRng;
use std::fmt;

/// How many data flits a generated message carries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SizeDistribution {
    /// Every message has exactly this many data flits.
    Fixed(u32),
    /// Uniform over `[min, max]` inclusive.
    Uniform {
        /// Smallest body size.
        min: u32,
        /// Largest body size.
        max: u32,
    },
    /// Bimodal traffic: short control messages with probability `p_short`,
    /// long bulk messages otherwise — the classic multicomputer mix.
    Bimodal {
        /// Body size of short messages.
        short: u32,
        /// Body size of long messages.
        long: u32,
        /// Probability of a short message.
        p_short: f64,
    },
}

impl SizeDistribution {
    /// Draws one body size.
    pub fn sample(&self, rng: &mut SimRng) -> u32 {
        match *self {
            SizeDistribution::Fixed(n) => n,
            SizeDistribution::Uniform { min, max } => {
                let (lo, hi) = if min <= max { (min, max) } else { (max, min) };
                lo + rng.index((hi - lo + 1) as usize).unwrap_or(0) as u32
            }
            SizeDistribution::Bimodal {
                short,
                long,
                p_short,
            } => {
                if rng.chance(p_short) {
                    short
                } else {
                    long
                }
            }
        }
    }

    /// Expected body size.
    pub fn mean(&self) -> f64 {
        match *self {
            SizeDistribution::Fixed(n) => f64::from(n),
            SizeDistribution::Uniform { min, max } => (f64::from(min) + f64::from(max)) / 2.0,
            SizeDistribution::Bimodal {
                short,
                long,
                p_short,
            } => {
                let p = p_short.clamp(0.0, 1.0);
                f64::from(short) * p + f64::from(long) * (1.0 - p)
            }
        }
    }
}

impl fmt::Display for SizeDistribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SizeDistribution::Fixed(n) => write!(f, "fixed({n})"),
            SizeDistribution::Uniform { min, max } => write!(f, "uniform({min}..={max})"),
            SizeDistribution::Bimodal {
                short,
                long,
                p_short,
            } => write!(f, "bimodal({short}/{long}, p={p_short})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_is_constant() {
        let mut rng = SimRng::seed(1);
        let d = SizeDistribution::Fixed(7);
        assert!((0..50).all(|_| d.sample(&mut rng) == 7));
        assert_eq!(d.mean(), 7.0);
    }

    #[test]
    fn uniform_stays_in_range_and_centres() {
        let mut rng = SimRng::seed(2);
        let d = SizeDistribution::Uniform { min: 4, max: 12 };
        let samples: Vec<u32> = (0..4000).map(|_| d.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&s| (4..=12).contains(&s)));
        let mean = samples.iter().map(|&s| f64::from(s)).sum::<f64>() / samples.len() as f64;
        assert!((mean - d.mean()).abs() < 0.3);
    }

    #[test]
    fn uniform_tolerates_swapped_bounds() {
        let mut rng = SimRng::seed(3);
        let d = SizeDistribution::Uniform { min: 9, max: 3 };
        assert!((3..=9).contains(&d.sample(&mut rng)));
    }

    #[test]
    fn bimodal_mixes() {
        let mut rng = SimRng::seed(4);
        let d = SizeDistribution::Bimodal {
            short: 2,
            long: 64,
            p_short: 0.75,
        };
        let samples: Vec<u32> = (0..4000).map(|_| d.sample(&mut rng)).collect();
        let shorts = samples.iter().filter(|&&s| s == 2).count() as f64 / 4000.0;
        assert!((shorts - 0.75).abs() < 0.05);
        assert!((d.mean() - (0.75 * 2.0 + 0.25 * 64.0)).abs() < 1e-12);
    }

    #[test]
    fn display_forms() {
        assert_eq!(SizeDistribution::Fixed(3).to_string(), "fixed(3)");
        assert_eq!(
            SizeDistribution::Uniform { min: 1, max: 2 }.to_string(),
            "uniform(1..=2)"
        );
    }
}
