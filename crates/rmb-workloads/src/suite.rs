//! Named workload suites tying permutations, sizes and arrivals together.

use crate::arrival::{ArrivalProcess, BernoulliArrivals};
use crate::permutation::{Permutation, PermutationKind};
use crate::sizes::SizeDistribution;
use rmb_sim::SimRng;
use rmb_types::MessageSpec;

/// A complete, reproducible workload description.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadConfig {
    /// Ring / network size.
    pub nodes: u32,
    /// Message body size distribution.
    pub sizes: SizeDistribution,
    /// Seed every stream derives from.
    pub seed: u64,
}

impl WorkloadConfig {
    /// A convenient default: fixed 16-flit bodies.
    pub fn new(nodes: u32, seed: u64) -> Self {
        WorkloadConfig {
            nodes,
            sizes: SizeDistribution::Fixed(16),
            seed,
        }
    }

    /// Replaces the size distribution.
    #[must_use]
    pub fn with_sizes(mut self, sizes: SizeDistribution) -> Self {
        self.sizes = sizes;
        self
    }
}

/// Generates the concrete message streams of a [`WorkloadConfig`].
#[derive(Debug, Clone)]
pub struct WorkloadSuite {
    config: WorkloadConfig,
}

impl WorkloadSuite {
    /// Creates a suite for a configuration.
    pub fn new(config: WorkloadConfig) -> Self {
        WorkloadSuite { config }
    }

    /// The configuration.
    pub const fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// One permutation workload: every non-fixed point sends one message
    /// at tick 0.
    pub fn permutation(&self, kind: PermutationKind) -> Vec<MessageSpec> {
        let mut rng = SimRng::seed(self.config.seed);
        let mut perm_rng = rng.fork("permutation");
        let mut size_rng = rng.fork("sizes");
        let p = Permutation::generate(kind, self.config.nodes, &mut perm_rng);
        p.messages(0)
            .into_iter()
            .map(|m| {
                MessageSpec::new(m.source, m.destination, self.config.sizes.sample(&mut size_rng))
            })
            .collect()
    }

    /// The permutation object itself (for lower-bound computations).
    pub fn permutation_map(&self, kind: PermutationKind) -> Permutation {
        let mut rng = SimRng::seed(self.config.seed);
        let mut perm_rng = rng.fork("permutation");
        Permutation::generate(kind, self.config.nodes, &mut perm_rng)
    }

    /// An open-loop Bernoulli stream at per-node rate `rate` for `ticks`.
    pub fn bernoulli(&self, rate: f64, ticks: u64) -> Vec<MessageSpec> {
        let mut rng = SimRng::seed(self.config.seed);
        let mut arr_rng = rng.fork("arrivals");
        let sizes = self.config.sizes;
        BernoulliArrivals::new(rate).generate(self.config.nodes, ticks, &mut arr_rng, &mut |r| {
            sizes.sample(r)
        })
    }

    /// A hot-spot stream: a Bernoulli stream in which each message is
    /// redirected to `target` with probability `bias` (the classic
    /// hot-spot traffic of shared-memory studies). `bias = 0` is plain
    /// uniform traffic; `bias = 1` sends everything to the hot node.
    pub fn hotspot(
        &self,
        rate: f64,
        ticks: u64,
        target: rmb_types::NodeId,
        bias: f64,
    ) -> Vec<MessageSpec> {
        assert!(
            target.index() < self.config.nodes,
            "hot node must be on the ring"
        );
        let mut rng = SimRng::seed(self.config.seed);
        let mut arr_rng = rng.fork("arrivals");
        let mut bias_rng = rng.fork("hotspot");
        let sizes = self.config.sizes;
        let base = BernoulliArrivals::new(rate).generate(
            self.config.nodes,
            ticks,
            &mut arr_rng,
            &mut |r| sizes.sample(r),
        );
        base.into_iter()
            .filter_map(|m| {
                if bias_rng.chance(bias) {
                    if m.source == target {
                        return None; // the hot node does not message itself
                    }
                    Some(MessageSpec::new(m.source, target, m.data_flits).at(m.inject_at))
                } else {
                    Some(m)
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_workload_is_deterministic() {
        let suite = WorkloadSuite::new(WorkloadConfig::new(16, 77));
        let a = suite.permutation(PermutationKind::Random);
        let b = suite.permutation(PermutationKind::Random);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn permutation_map_matches_messages() {
        let suite = WorkloadSuite::new(WorkloadConfig::new(8, 5));
        let p = suite.permutation_map(PermutationKind::Random);
        let msgs = suite.permutation(PermutationKind::Random);
        assert_eq!(msgs.len() as u32, p.len() - p.fixed_points());
        for m in &msgs {
            assert_eq!(p.apply(m.source.index()), m.destination.index());
        }
    }

    #[test]
    fn sizes_are_applied() {
        let cfg = WorkloadConfig::new(8, 1).with_sizes(SizeDistribution::Fixed(3));
        let suite = WorkloadSuite::new(cfg);
        let msgs = suite.permutation(PermutationKind::Opposite);
        assert!(msgs.iter().all(|m| m.data_flits == 3));
    }

    #[test]
    fn hotspot_concentrates_destinations() {
        use rmb_types::NodeId;
        let suite = WorkloadSuite::new(WorkloadConfig::new(16, 3));
        let hot = NodeId::new(5);
        let msgs = suite.hotspot(0.05, 10_000, hot, 0.7);
        assert!(!msgs.is_empty());
        let to_hot = msgs.iter().filter(|m| m.destination == hot).count() as f64;
        let share = to_hot / msgs.len() as f64;
        assert!(share > 0.6 && share < 0.85, "share {share}");
        assert!(msgs.iter().all(|m| m.source != m.destination));
        // bias 0 leaves the uniform stream untouched.
        let uniform = suite.hotspot(0.05, 10_000, hot, 0.0);
        assert_eq!(uniform, suite.bernoulli(0.05, 10_000));
    }

    #[test]
    fn bernoulli_stream_scales_with_rate() {
        let suite = WorkloadSuite::new(WorkloadConfig::new(8, 9));
        let low = suite.bernoulli(0.01, 10_000);
        let high = suite.bernoulli(0.1, 10_000);
        assert!(high.len() > 5 * low.len());
    }
}
