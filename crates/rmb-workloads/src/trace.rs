//! Trace recording and replay: turn a run's delivered set into a
//! portable workload.
//!
//! A recorded trace is the canonical JSON array of the [`MessageSpec`]s a
//! run delivered, sorted into the canonical trace order — by
//! `(inject_at, source, destination, data_flits)` — so the same delivered
//! *set* always encodes to the same bytes regardless of completion order,
//! engine or execution mode. Replaying the trace through another scenario
//! re-offers exactly those messages; a replay run that delivers everything
//! proves the two runs moved an identical message set.

use rmb_types::json::{FromJson, JsonError, ToJson, Value};
use rmb_types::MessageSpec;

/// Sorts specs into canonical trace order:
/// `(inject_at, source, destination, data_flits)`.
pub fn canonical_trace_order(specs: &mut [MessageSpec]) {
    specs.sort_by_key(|m| {
        (
            m.inject_at,
            m.source.index(),
            m.destination.index(),
            m.data_flits,
        )
    });
}

/// Encodes specs as a canonical JSON array (sorted trace order, fixed key
/// order, no whitespace, trailing newline). Byte-equality of two encoded
/// traces is equality of the message multisets.
///
/// # Examples
///
/// ```
/// use rmb_types::{MessageSpec, NodeId};
/// use rmb_workloads::{decode_trace, encode_trace};
///
/// let specs = vec![
///     MessageSpec::new(NodeId::new(3), NodeId::new(1), 4).at(7),
///     MessageSpec::new(NodeId::new(0), NodeId::new(2), 4).at(2),
/// ];
/// let text = encode_trace(&specs);
/// let back = decode_trace(&text).unwrap();
/// assert_eq!(back[0].inject_at, 2); // canonical order, not input order
/// assert_eq!(back.len(), 2);
/// ```
pub fn encode_trace(specs: &[MessageSpec]) -> String {
    let mut sorted = specs.to_vec();
    canonical_trace_order(&mut sorted);
    let mut out = String::with_capacity(sorted.len() * 64 + 8);
    out.push('[');
    for (i, m) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&m.to_json());
    }
    out.push_str("]\n");
    out
}

/// Decodes a trace produced by [`encode_trace`] (any JSON array of spec
/// objects is accepted; order is normalised on encode, not decode).
///
/// # Errors
///
/// [`JsonError`] when the text is not a JSON array of message specs.
pub fn decode_trace(text: &str) -> Result<Vec<MessageSpec>, JsonError> {
    let v = Value::parse(text.trim_end())?;
    match v {
        Value::Arr(items) => items.iter().map(MessageSpec::from_value).collect(),
        _ => Err(JsonError {
            at: 0,
            message: "trace: expected a JSON array of message specs".to_string(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmb_types::NodeId;

    fn spec(s: u32, d: u32, f: u32, at: u64) -> MessageSpec {
        MessageSpec::new(NodeId::new(s), NodeId::new(d), f).at(at)
    }

    #[test]
    fn encoding_is_order_insensitive() {
        let a = vec![spec(0, 1, 4, 10), spec(2, 3, 8, 5), spec(1, 0, 4, 10)];
        let mut b = a.clone();
        b.reverse();
        assert_eq!(encode_trace(&a), encode_trace(&b));
    }

    #[test]
    fn round_trips_through_text() {
        let specs = vec![spec(5, 2, 16, 0), spec(0, 7, 1, 99), spec(5, 2, 16, 0)];
        let decoded = decode_trace(&encode_trace(&specs)).unwrap();
        assert_eq!(decoded.len(), 3, "duplicates survive (multiset)");
        let mut expect = specs;
        canonical_trace_order(&mut expect);
        assert_eq!(decoded, expect);
    }

    #[test]
    fn empty_trace_round_trips() {
        assert_eq!(encode_trace(&[]), "[]\n");
        assert!(decode_trace("[]\n").unwrap().is_empty());
    }

    #[test]
    fn rejects_non_arrays() {
        assert!(decode_trace("{}").is_err());
        assert!(decode_trace("nonsense").is_err());
    }
}
