//! Watch the compaction protocol at work: several overlapping circuits
//! enter on the top bus and sink to the lowest free segments, frame by
//! frame (the animated version of the paper's Figures 2, 3 and 5).
//!
//! ```text
//! cargo run --example compaction_trace
//! ```

use rmb::core::{render_occupancy, render_virtual_buses, RmbNetwork};
use rmb::sim::trace::TraceKind;
use rmb::types::{MessageSpec, NodeId, RmbConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = RmbConfig::new(12, 4)?;
    let mut net = RmbNetwork::builder(cfg).recording(true).build();

    // Three long-running circuits sharing hops 4..6, staggered so each
    // finds the top bus free thanks to its predecessor's compaction.
    net.submit(MessageSpec::new(NodeId::new(0), NodeId::new(7), 400))?;
    net.submit(MessageSpec::new(NodeId::new(2), NodeId::new(9), 400).at(4))?;
    net.submit(MessageSpec::new(NodeId::new(4), NodeId::new(11), 400).at(8))?;

    for _frame in 0..8 {
        net.run(4);
        println!("t = {:>3} ----------------------------------------", net.now());
        print!("{}", render_occupancy(&net));
        println!();
    }
    println!("live circuits:\n{}", render_virtual_buses(&net));

    let events = net.take_events();
    let moves = events
        .iter()
        .filter(|e| e.kind == TraceKind::CompactMove)
        .count();
    println!("compaction moves so far: {moves}");
    println!("first ten moves:");
    for e in events
        .iter()
        .filter(|e| e.kind == TraceKind::CompactMove)
        .take(10)
    {
        println!("  {e}");
    }
    Ok(())
}
