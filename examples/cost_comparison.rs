//! Print the paper's §3.2 cost comparison — links, cross points and VLSI
//! area for k-permutation capability — and cross-check the link formulas
//! against actually constructed network instances.
//!
//! ```text
//! cargo run --example cost_comparison
//! ```

use rmb::analysis::cost::{cost, Architecture};
use rmb::analysis::report::fnum;
use rmb::analysis::structural::all_checks;
use rmb::analysis::Table;

fn main() {
    let n = 1024u32;
    let k = 16u16;
    println!("§3.2 cost comparison at N = {n}, k = {k} (k-permutation capability):\n");
    let mut t = Table::new(vec!["architecture", "links", "cross points", "area"]);
    for arch in Architecture::ALL {
        let c = cost(arch, n, k);
        t.row(vec![
            arch.to_string(),
            fnum(c.links),
            fnum(c.crosspoints),
            fnum(c.area),
        ]);
    }
    println!("{t}");

    println!("Structural cross-check of the link formulas (N = 64, k = 8):\n");
    let mut t = Table::new(vec!["architecture", "model", "constructed", "rel. error"]);
    for c in all_checks(64, 8) {
        t.row(vec![
            c.arch.to_string(),
            fnum(c.model_links),
            fnum(c.structural_links),
            format!("{:.4}", c.relative_error()),
        ]);
    }
    println!("{t}");
    println!(
        "The paper's conclusion, visible above: the RMB needs more links\n\
         than the fat tree but an order of magnitude fewer cross points\n\
         and far less area than the hypercube family — with constant-length\n\
         wires throughout."
    );
}
