//! Quickstart for the hierarchical RMB: four local rings bridged through
//! a global ring, mixed intra- and inter-ring traffic.
//!
//! ```text
//! cargo run --example hier_quickstart
//! ```

use rmb::hier::{model, HierNetwork};
use rmb::sim::SimRng;
use rmb::types::{HierConfig, HierMessageSpec, NodeAddr, NodeId};
use rmb::workloads::LocalityTraffic;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Four 16-node local rings, 4 buses per hop, joined by a 4-node
    // global ring of bridges (one bridge per local ring, at position 0).
    let cfg = HierConfig::builder(4, 16, 4).bridge_queue_depth(4).build()?;
    println!(
        "{} rings x {} nodes = {} compute nodes (+{} bridges)\n",
        cfg.rings(),
        cfg.local().nodes(),
        cfg.compute_nodes(),
        cfg.rings()
    );

    // One inter-ring message, traced: watch it cross both bridges.
    let mut net = HierNetwork::builder(cfg).recording(true).build();
    let spec = HierMessageSpec::new(
        NodeAddr::new(0, NodeId::new(3)),
        NodeAddr::new(2, NodeId::new(9)),
        8,
    );
    println!("predicted unloaded latency for {spec}:");
    println!("  {} ticks\n", model::unloaded_latency(&cfg, &spec));
    net.submit(spec)?;
    let report = net.run_to_quiescence(10_000);
    let d = &net.delivered_log()[0];
    println!(
        "delivered after {} ticks (measured latency {})",
        report.ticks,
        d.delivered_at - d.spec.inject_at
    );
    println!("bridge crossings in the trace:");
    for event in net.take_events() {
        let text = event.to_string();
        if text.contains("bridge") {
            println!("  {text}");
        }
    }

    // A locality-0.8 workload: most traffic stays on its home ring, the
    // rest queues through the bridges.
    let mut net = HierNetwork::new(cfg);
    let msgs = LocalityTraffic {
        rings: cfg.rings(),
        nodes: cfg.local().nodes().get(),
        bridge: cfg.bridge(),
        locality: 0.8,
        flits: 8,
    }
    .generate(200, 1_000, &mut SimRng::seed(42));
    net.submit_all(msgs)?;
    let report = net.run_to_quiescence(1_000_000);
    println!(
        "\nworkload: {} delivered / {} aborted in {} ticks, mean latency {:.1}",
        report.delivered,
        report.aborted,
        report.ticks,
        report.mean_latency()
    );
    println!(
        "bridge refusals (bounded queues pushing back): {}",
        report.bridge_refusals
    );
    Ok(())
}
