//! Multicast on one circuit vs. a unicast series: the extension the paper
//! names in §1 ("the RMB concept can also be extended to support
//! broadcasting and multicasting"), implemented with taps — the header
//! takes each intermediate destination's receive port as it passes, and
//! every tap then reads the stream in place.
//!
//! ```text
//! cargo run --example multicast_demo
//! ```

use rmb::analysis::Table;
use rmb::core::RmbNetwork;
use rmb::types::{MessageSpec, NodeId, RmbConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 16u32;
    let k = 2u16;
    let flits = 24u32;
    let destinations: Vec<NodeId> = vec![3, 6, 9, 12].into_iter().map(NodeId::new).collect();

    // One multicast circuit.
    let mut mc = RmbNetwork::new(RmbConfig::new(n, k)?);
    mc.submit_multicast(NodeId::new(0), &destinations, flits, 0)?;
    let mc_report = mc.run_to_quiescence(100_000);

    // The same fan-out as four separate messages.
    let mut uc = RmbNetwork::new(RmbConfig::new(n, k)?);
    for d in &destinations {
        uc.submit(MessageSpec::new(NodeId::new(0), *d, flits))?;
    }
    let uc_report = uc.run_to_quiescence(100_000);

    println!(
        "Fan-out of one {flits}-flit payload from n0 to {} destinations\n\
         (N = {n}, k = {k}):\n",
        destinations.len()
    );
    let mut t = Table::new(vec!["destination", "multicast arrival", "unicast arrival"]);
    for d in &destinations {
        let at = |log: &[rmb::types::DeliveredMessage]| {
            log.iter()
                .find(|m| m.spec.destination == *d)
                .map(|m| m.delivered_at.to_string())
                .unwrap_or_default()
        };
        t.row(vec![d.to_string(), at(mc.delivered_log()), at(uc.delivered_log())]);
    }
    println!("{t}");
    println!(
        "multicast makespan: {} ticks ({} circuit, {} refusals)",
        mc_report.makespan(),
        1,
        mc_report.refusals
    );
    println!(
        "unicast   makespan: {} ticks ({} circuits, {} refusals)",
        uc_report.makespan(),
        destinations.len(),
        uc_report.refusals
    );
    println!(
        "\nThe single tapped circuit reaches every member at stream speed;\n\
         the unicast series serialises on the source's send port and pays\n\
         a fresh circuit set-up per destination."
    );
    Ok(())
}
