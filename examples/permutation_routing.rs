//! Route the classic permutation workloads over the RMB and the paper's
//! comparator networks (hypercube, fat tree, mesh), printing the measured
//! makespans side by side — the living version of the paper's §3
//! comparison.
//!
//! ```text
//! cargo run --release --example permutation_routing
//! ```

use rmb::analysis::{DualRmbRing, RmbRing, Table};
use rmb::baselines::{FatTree, Hypercube, Mesh2D, Network};
use rmb::types::RmbConfig;
use rmb::workloads::{PermutationKind, SizeDistribution, WorkloadConfig, WorkloadSuite};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 16u32; // square power of two: valid for every topology
    let k = 4u16;
    let flits = 16u32;

    let suite = WorkloadSuite::new(
        WorkloadConfig::new(n, 1996).with_sizes(SizeDistribution::Fixed(flits)),
    );
    let rmb_cfg = RmbConfig::builder(n, k)
        .head_timeout(16 * u64::from(n))
        .retry_backoff(u64::from(n))
        .build()?;

    let kinds = [
        PermutationKind::Rotation(1),
        PermutationKind::Random,
        PermutationKind::Opposite,
        PermutationKind::Reversal,
        PermutationKind::BitReversal,
        PermutationKind::Transpose,
    ];

    let mut table = Table::new(vec!["permutation", "network", "makespan", "mean latency"]);
    for kind in kinds {
        let msgs = suite.permutation(kind);
        let mut nets: Vec<Box<dyn Network>> = vec![
            Box::new(RmbRing::new(rmb_cfg)),
            Box::new(DualRmbRing::new(rmb_cfg)),
            Box::new(Hypercube::new(n)),
            Box::new(FatTree::new(n, k)),
            Box::new(Mesh2D::square(n)),
        ];
        for net in &mut nets {
            let out = net.route_messages(&msgs, 4_000_000);
            table.row(vec![
                kind.to_string(),
                net.label(),
                if out.delivered.len() == msgs.len() {
                    out.makespan().to_string()
                } else {
                    "stalled".into()
                },
                format!("{:.1}", out.mean_latency()),
            ]);
        }
    }
    println!(
        "Permutation routing, N = {n}, k = {k}, {flits}-flit bodies\n\
         (every network at one flit per channel per tick):\n"
    );
    println!("{table}");
    println!(
        "Reading guide: the ring RMB wins local traffic (rotation), loses\n\
         long-haul permutations to the log-diameter hypercube and fat tree,\n\
         and the dual-ring variant halves the worst-case distance — the\n\
         shape the paper's §3 analysis predicts."
    );
    Ok(())
}
