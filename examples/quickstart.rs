//! Quickstart: build an RMB, send a message, watch the protocol run.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use rmb::core::{render_occupancy, RmbNetwork};
use rmb::types::{MessageSpec, NodeId, RmbConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 12-node ring with 3 parallel bus segments between adjacent INCs.
    let cfg = RmbConfig::new(12, 3)?;
    let mut net = RmbNetwork::builder(cfg).recording(true).build();

    // One 8-flit message from node 2 to node 9 (7 clockwise hops).
    let request = net.submit(MessageSpec::new(NodeId::new(2), NodeId::new(9), 8))?;
    println!("submitted request {request}\n");

    // Snapshot the bus array while the circuit is live.
    net.run(10);
    println!("bus occupancy at t = 10 (letters = virtual bus segments):");
    println!("{}", render_occupancy(&net));

    let report = net.run_to_quiescence(10_000);
    let d = &net.delivered_log()[0];
    println!("delivered: {}", d.spec);
    println!("  circuit established at t = {}", d.circuit_at);
    println!("  final flit arrived at  t = {}", d.delivered_at);
    println!("  end-to-end latency     = {} ticks", d.latency());
    println!("  compaction moves       = {}", report.compaction_moves);

    println!("\nprotocol trace:");
    for event in net.take_events() {
        println!("  {event}");
    }
    Ok(())
}
