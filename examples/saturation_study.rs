//! Open-loop load sweep: push Bernoulli traffic through the RMB at rising
//! rates and watch latency, throughput and bus utilisation find the
//! saturation knee — then look at a latency histogram on both sides of
//! it.
//!
//! ```text
//! cargo run --release --example saturation_study
//! ```

use rmb::analysis::Table;
use rmb::core::RmbNetwork;
use rmb::types::RmbConfig;
use rmb::workloads::{SizeDistribution, WorkloadConfig, WorkloadSuite};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 24u32;
    let k = 6u16;
    let window = 4_000u64;
    let suite = WorkloadSuite::new(
        WorkloadConfig::new(n, 2026).with_sizes(SizeDistribution::Bimodal {
            short: 4,
            long: 48,
            p_short: 0.7,
        }),
    );

    let mut table = Table::new(vec![
        "rate/node/tick",
        "messages",
        "mean latency",
        "p99 (approx)",
        "utilization",
    ]);
    for rate in [0.0005, 0.001, 0.002, 0.004, 0.008] {
        let msgs = suite.bernoulli(rate, window);
        let cfg = RmbConfig::builder(n, k)
            .head_timeout(16 * u64::from(n))
            .retry_backoff(u64::from(n))
            .build()?;
        let mut net = RmbNetwork::new(cfg);
        net.submit_all(msgs.iter().copied())?;
        let report = net.run_to_quiescence(window * 50);
        let hist = net.latency_histogram(256);
        table.row(vec![
            format!("{rate:.4}"),
            format!("{}/{}", report.delivered, msgs.len()),
            format!("{:.1}", report.mean_latency()),
            match hist.quantile(0.99) {
                Some(u64::MAX) => "beyond histogram".into(),
                Some(q) => q.to_string(),
                None => String::new(),
            },
            format!("{:.3}", report.mean_utilization),
        ]);
    }
    println!(
        "RMB saturation study (N = {n}, k = {k}, bimodal 4/48-flit bodies,\n\
         {window}-tick injection window):\n"
    );
    println!("{table}");
    println!(
        "The knee sits where mean latency decouples from the unloaded value;\n\
         beyond it the bus array pins near full utilisation while latency\n\
         grows without bound — the open-loop signature of any circuit-\n\
         switched interconnect."
    );
    Ok(())
}
