//! Quickstart: run a checked-in declarative scenario.
//!
//! ```text
//! cargo run --example scenario_quickstart
//! cargo run --example scenario_quickstart -- scenarios/serve_hotspot.toml
//! ```
//!
//! A scenario file is a complete experiment: topology, engine knobs,
//! workload, optional fault plan and serving options. This example loads
//! one (default: `scenarios/flat_batch.toml`), prints the parsed summary,
//! runs it, and shows both the human table and the canonical JSON row —
//! the same row `experiments --scenario FILE --json` emits and the same
//! bytes `scenarios/golden/` pins.

use rmb::scenario::{parse_scenario, run_scenario};
use std::path::Path;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "scenarios/flat_batch.toml".to_string());

    let text = std::fs::read_to_string(&path)?;
    let scenario = parse_scenario(&text)?;
    println!("scenario `{}` (seed {})", scenario.name, scenario.seed);
    println!("  topology: {}", scenario.topology.label());
    println!("  workload: {}", scenario.workload.label());

    let base = Path::new(&path).parent().unwrap_or_else(|| Path::new("."));
    let out = run_scenario(&scenario, base)?;

    println!("\n{}", out.table);
    println!("canonical row:\n{}", out.row_json);

    // The scenario model round-trips: print it back as TOML.
    println!("\nre-emitted scenario:\n{}", scenario.to_toml());
    Ok(())
}
