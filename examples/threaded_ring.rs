//! Run the odd/even cycle handshake on real OS threads — one per INC,
//! wildly uneven pacing, no global clock — and verify Lemma 1 live; then
//! let the threads compact a shared set of circuits to the bottom of the
//! bus array.
//!
//! ```text
//! cargo run --release --example threaded_ring
//! ```

use rmb::asynchronous::{StaticBus, ThreadedCompactor, ThreadedCycleRing};
use rmb::types::{BusIndex, NodeId};

fn main() {
    println!("Lemma 1 under real threads (8 INCs, pathological pacing):");
    let stats = ThreadedCycleRing::new(8)
        .pacing(vec![0, 4000, 20, 900, 0, 150, 7, 2500])
        .min_transitions(500)
        .run();
    println!("  transitions per INC: {:?}", stats.transitions);
    println!("  max neighbour skew observed: {}", stats.max_observed_skew);
    println!("  Lemma 1 held: {}\n", stats.lemma1_held);

    println!("Threaded compaction of four stacked circuits (N = 12, k = 6):");
    let buses = vec![
        StaticBus {
            start: NodeId::new(0),
            heights: vec![BusIndex::new(5); 6],
        },
        StaticBus {
            start: NodeId::new(2),
            heights: vec![BusIndex::new(4); 6],
        },
        StaticBus {
            start: NodeId::new(4),
            heights: vec![BusIndex::new(3); 6],
        },
        StaticBus {
            start: NodeId::new(7),
            heights: vec![BusIndex::new(2); 3],
        },
    ];
    let result = ThreadedCompactor::new(12, 6).run(buses);
    println!("  total moves: {}", result.moves);
    println!("  reached fixpoint: {}", result.reached_fixpoint);
    for (i, bus) in result.buses.iter().enumerate() {
        let profile: Vec<String> = bus.heights.iter().map(|h| h.index().to_string()).collect();
        println!(
            "  bus {i}: starts at {}, final heights [{}]",
            bus.start,
            profile.join(",")
        );
    }
}
