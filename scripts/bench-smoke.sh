#!/usr/bin/env bash
# Quick performance smoke: release build, the two hot-path bench suites
# with a short sampling window, and the perf lint gate. Intended as the
# pre-merge check for changes touching rmb-core's tick path; full runs
# use plain `cargo bench`.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== clippy (perf lints as errors) =="
cargo clippy --workspace --all-targets -- -D clippy::perf

echo "== clippy (all warnings as errors on the fault/builder path) =="
cargo clippy -p rmb-types -p rmb-workloads -- -D warnings

echo "== release build =="
cargo build --release -p rmb-bench --benches

echo "== rmb_protocol + cycle_machine (short window) =="
CRITERION_SAMPLE_MS="${CRITERION_SAMPLE_MS:-20}" cargo bench -p rmb-bench --bench rmb_protocol
CRITERION_SAMPLE_MS="${CRITERION_SAMPLE_MS:-20}" cargo bench -p rmb-bench --bench cycle_machine

echo "== fault-tolerance sweep (tiny size) =="
ft_json="$(cargo run --release -q -p rmb-bench --bin experiments -- \
  --exp fault-tolerance --n 12 --k 3 --flits 4 --json)"
grep -q '"experiment": "fault-tolerance"' <<<"$ft_json"
if grep -q '"stalled": true' <<<"$ft_json"; then
  echo "fault-tolerance sweep stalled" >&2
  exit 1
fi

echo "bench smoke OK"
