#!/usr/bin/env bash
# Quick performance smoke: release build, the two hot-path bench suites
# with a short sampling window, the scheduler-equivalence smoke, a
# regression gate against the recorded PR 2 baseline, and the perf lint
# gate. Intended as the pre-merge check for changes touching rmb-core's
# tick path; full runs use plain `cargo bench`.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== clippy (perf lints as errors) =="
cargo clippy --workspace --all-targets -- -D clippy::perf

echo "== clippy (all warnings as errors on the scheduler/fault/builder path) =="
cargo clippy -p rmb-types -p rmb-workloads -p rmb-sim -p rmb-core -p rmb-hier \
  -p rmb-serve -p rmb-scenario -p rmb-bench -p rmb-async --all-targets -- -D warnings

echo "== scheduler equivalence (event engine vs dense-sweep oracle) =="
cargo test -q -p rmb-core --test scheduler_equivalence

echo "== exec-mode equivalence (sharded hierarchy engine vs serial oracle) =="
cargo test -q -p rmb-hier --test exec_equivalence

echo "== release build =="
cargo build --release -p rmb-bench --benches

echo "== rmb_protocol + cycle_machine + tick_kernel (short window) =="
bench_json="$(mktemp)"
trap 'rm -f "$bench_json"' EXIT
CRITERION_JSON="$bench_json" CRITERION_SAMPLE_MS="${CRITERION_SAMPLE_MS:-20}" \
  cargo bench -p rmb-bench --bench rmb_protocol
CRITERION_SAMPLE_MS="${CRITERION_SAMPLE_MS:-20}" cargo bench -p rmb-bench --bench cycle_machine
CRITERION_JSON="$bench_json" CRITERION_SAMPLE_MS="${CRITERION_SAMPLE_MS:-20}" \
  cargo bench -p rmb-bench --bench tick_kernel

echo "== regression gate (rmb_tick/loaded/N64_k4 vs BENCH_PR2.json) =="
# The saturated N=64, k=4 tick is the reference hot-path number. Fail if
# the just-measured median exceeds the recorded baseline by more than
# BENCH_GATE_FACTOR (default 1.10 = +10%). Short sampling windows are
# noisy, so the factor is overridable for slow machines.
gate_bench="rmb_tick/loaded/N64_k4"
baseline="$(awk -F'"after_median_ns": ' '
  /"benchmark": "rmb_tick\/loaded\/N64_k4"/ { grab = 1 }
  grab && NF > 1 { split($2, a, ","); print a[1]; exit }
' BENCH_PR2.json)"
measured="$(awk -F'"median_ns": ' '
  /"name": "rmb_tick\/loaded\/N64_k4"/ && NF > 1 { split($2, a, ","); print a[1]; exit }
' "$bench_json")"
if [[ -z "$baseline" || -z "$measured" ]]; then
  echo "regression gate: could not extract $gate_bench medians" >&2
  exit 1
fi
factor="${BENCH_GATE_FACTOR:-1.10}"
awk -v m="$measured" -v b="$baseline" -v f="$factor" 'BEGIN {
  limit = b * f
  printf "%s: measured %.1f ns, baseline %.1f ns, limit %.1f ns\n",
    "rmb_tick/loaded/N64_k4", m, b, limit
  exit (m > limit) ? 1 : 0
}' || { echo "regression gate FAILED for $gate_bench" >&2; exit 1; }

echo "== per-active-circuit budget gate (tick_kernel vs 10 ns + BENCH_PR7.json) =="
# The tentpole invariant of the bit-parallel kernel: a duty-cycle tick
# costs at most RMB_NS_BUDGET (default 10) ns per active circuit, at any
# ring size. The gate measures the active16 shapes, where the fixed
# ~5 ns empty-tick cost is amortised enough that the number is the true
# per-circuit marginal rather than harness overhead divided by four.
# The budget check uses the median (it passes with >30% headroom, so a
# noisy smoke window won't flake); the regression check compares against
# the committed BENCH_PR7.json baseline with the same BENCH_GATE_FACTOR
# slack as the PR 2 gate.
budget="${RMB_NS_BUDGET:-10}"
for gate_bench in "tick_kernel/per_circuit/N64_k8_active16" "tick_kernel/per_circuit/N1024_k8_active16"; do
  esc="${gate_bench//\//\\/}"
  measured="$(awk -F'"median_ns": ' '
    /"name": "'"$esc"'"/ && NF > 1 { split($2, a, ","); print a[1]; exit }
  ' "$bench_json")"
  baseline="$(awk -F'"after_median_ns": ' '
    /"benchmark": "'"$esc"'"/ { grab = 1 }
    grab && NF > 1 { split($2, a, ","); print a[1]; exit }
  ' BENCH_PR7.json)"
  if [[ -z "$baseline" || -z "$measured" ]]; then
    echo "perf gate: could not extract $gate_bench numbers" >&2
    exit 1
  fi
  awk -v m="$measured" -v bud="$budget" -v active=16 -v name="$gate_bench" 'BEGIN {
    per = m / active
    printf "%s: %.2f ns per active circuit (budget %d ns)\n", name, per, bud
    exit (per > bud) ? 1 : 0
  }' || { echo "per-circuit budget gate FAILED for $gate_bench" >&2; exit 1; }
  awk -v m="$measured" -v b="$baseline" -v f="${BENCH_GATE_FACTOR:-1.10}" -v name="$gate_bench" 'BEGIN {
    limit = b * f
    printf "%s: measured %.1f ns, baseline %.1f ns, limit %.1f ns\n", name, m, b, limit
    exit (m > limit) ? 1 : 0
  }' || { echo "regression gate FAILED for $gate_bench" >&2; exit 1; }
done

echo "== scenario goldens (byte-identical envelopes) =="
# Every checked-in scenario must reproduce its pinned golden exactly.
# The alphabetical glob runs trace_record before trace_replay, so the
# recorded trace is rewritten before the replay scenario re-reads it —
# and the rewrite itself must be byte-identical to the checked-in trace.
trace_before="$(cksum scenarios/traces/smoke.trace.json)"
for f in scenarios/*.toml; do
  stem="$(basename "$f" .toml)"
  got="$(cargo run --release -q -p rmb-bench --bin experiments -- --scenario "$f" --json)"
  if ! diff <(printf '%s\n' "$got") "scenarios/golden/$stem.json" >/dev/null; then
    echo "scenario golden drift for $stem:" >&2
    diff <(printf '%s\n' "$got") "scenarios/golden/$stem.json" >&2 || true
    echo "if intentional, regenerate with: experiments --scenario $f --json" >&2
    exit 1
  fi
done
trace_after="$(cksum scenarios/traces/smoke.trace.json)"
if [[ "$trace_before" != "$trace_after" ]]; then
  echo "trace_record rewrote scenarios/traces/smoke.trace.json with different bytes" >&2
  exit 1
fi

echo "== fault-tolerance sweep (tiny size) =="
ft_json="$(cargo run --release -q -p rmb-bench --bin experiments -- \
  --exp fault-tolerance --n 12 --k 3 --flits 4 --json)"
grep -q '"experiment": "fault-tolerance"' <<<"$ft_json"
if grep -q '"stalled": true' <<<"$ft_json"; then
  echo "fault-tolerance sweep stalled" >&2
  exit 1
fi

echo "== hierarchical scaling sweep (2 rings, tiny size) =="
hier_json="$(cargo run --release -q -p rmb-bench --bin experiments -- \
  --exp hier-scaling --n 8 --k 2 --flits 4 --json)"
grep -q '"experiment": "hier-scaling"' <<<"$hier_json"
if grep -q '"stalled": true' <<<"$hier_json"; then
  echo "hier-scaling sweep stalled" >&2
  exit 1
fi

echo "== sharded hierarchy grid (oracle match + core-aware perf gates) =="
# The hier-shard experiment asserts in-process that every Sharded(t)
# cell's report equals the serial oracle's; the emitted rows are
# re-checked here. The two perf gates are core-aware because wall-clock
# scaling is a property of the host, not the code: on a box with fewer
# than 4 CPUs the sharded rows measure oversubscription (stripes
# time-slicing one core through a condvar per 1-tick window), so the
# >= 2x speedup assertion would fail on any implementation, correct or
# not. There the script still runs the full machinery at 2 threads and
# skips the speedup gate loudly.
cores="$(nproc)"
if [[ "$cores" -ge 4 ]]; then shard_threads=4; else shard_threads=2; fi
shard_json="$(cargo run --release -q -p rmb-bench --bin experiments -- \
  --exp hier-shard --threads "$shard_threads" --json)"
grep -q '"experiment": "hier-shard"' <<<"$shard_json"
if grep -q '"matches_serial": false' <<<"$shard_json"; then
  echo "sharded engine diverged from the serial oracle" >&2
  exit 1
fi

# Hier-throughput regression gate: the serial 64-ring high-locality
# cell's sim_ticks_per_sec against the recorded BENCH_PR9.json row.
# Wall-clock throughput is noisier than the nanosecond benches above, so
# the slack factor is wider (default 1.5 = tolerate a 33% dip) and
# overridable for slow machines.
measured="$(awk -F'"sim_ticks_per_sec": ' '
  /"threads": 1,/ && /"rings": 64,/ && /"locality": 0.9,/ && NF > 1 { split($2, a, ","); print a[1]; exit }
' <<<"$shard_json")"
baseline="$(awk -F'"sim_ticks_per_sec": ' '
  /"threads": 1,/ && /"rings": 64,/ && /"locality": 0.9,/ && NF > 1 { split($2, a, ","); print a[1]; exit }
' BENCH_PR9.json)"
if [[ -z "$baseline" || -z "$measured" ]]; then
  echo "hier-throughput gate: could not extract serial 64-ring sim_ticks_per_sec" >&2
  exit 1
fi
awk -v m="$measured" -v b="$baseline" -v f="${RMB_HIER_GATE_FACTOR:-1.5}" 'BEGIN {
  floor = b / f
  printf "hier serial throughput: measured %.0f ticks/s, baseline %.0f ticks/s, floor %.0f ticks/s\n",
    m, b, floor
  exit (m < floor) ? 1 : 0
}' || { echo "hier-throughput regression gate FAILED" >&2; exit 1; }

# Speedup gate: >= RMB_SPEEDUP_MIN (default 2.0) at 4 threads on the
# 64-ring high-locality cell — only meaningful with cores to scale onto.
if [[ "$cores" -ge 4 ]]; then
  speedup="$(awk -F'"speedup": ' '
    /"threads": '"$shard_threads"',/ && /"rings": 64,/ && /"locality": 0.9,/ && NF > 1 { split($2, a, ","); print a[1]; exit }
  ' <<<"$shard_json")"
  if [[ -z "$speedup" ]]; then
    echo "speedup gate: could not extract the ${shard_threads}-thread 64-ring row" >&2
    exit 1
  fi
  awk -v s="$speedup" -v min="${RMB_SPEEDUP_MIN:-2.0}" -v t="$shard_threads" 'BEGIN {
    printf "sharded speedup at %d threads (64 rings, locality 0.9): %.2fx (floor %.1fx)\n", t, s, min
    exit (s < min) ? 1 : 0
  }' || { echo "speedup gate FAILED" >&2; exit 1; }
else
  echo "speedup gate SKIPPED: host has $cores CPU(s) (< 4); sharded rows measure" \
    "oversubscription, not scaling — see the host caveat in BENCH_PR9.json"
fi

echo "== open-loop serving soak (short, counters-only retention) =="
# A scaled-down version of the BENCH_PR8.json soak: same topology, rate
# and seed, 200k ticks instead of 10M. Gates the serving stack on the
# properties that must never regress — exact loss accounting and zero
# retained records under counters-only retention — and cross-checks the
# delivered count against the recorded 10M-tick run pro rata (the soak
# is deterministic, but tick count scales the totals, so the comparison
# is a ratio bound, not equality).
soak_json="$(cargo run --release -q -p rmb-bench --bin experiments -- \
  --exp open-loop-soak --ticks 200000 --json)"
grep -q '"experiment": "open-loop-soak"' <<<"$soak_json"
grep -q '"loss_accounted": true' <<<"$soak_json" \
  || { echo "open-loop soak lost arrivals" >&2; exit 1; }
grep -q '"retained_records": 0' <<<"$soak_json" \
  || { echo "open-loop soak retained records under counters-only" >&2; exit 1; }
soak_delivered="$(awk -F'"delivered": ' 'NF > 1 { split($2, a, ","); print a[1]; exit }' <<<"$soak_json")"
bench_delivered="$(awk -F'"delivered": ' '
  /"soak"/ { grab = 1 }
  grab && NF > 1 { split($2, a, ","); print a[1]; exit }
' BENCH_PR8.json)"
awk -v s="$soak_delivered" -v b="$bench_delivered" 'BEGIN {
  # 200k of 10M ticks => expect ~2% of the recorded deliveries; allow 2x
  # slack either way for warmup-fraction effects.
  expected = b / 50.0
  printf "open-loop soak: delivered %d over 200k ticks (recorded 10M-tick run: %d)\n", s, b
  exit (s > expected * 2 || s < expected / 2) ? 1 : 0
}' || { echo "open-loop soak delivered count off vs BENCH_PR8.json" >&2; exit 1; }

echo "bench smoke OK"
