#!/usr/bin/env bash
# Quick performance smoke: release build, the two hot-path bench suites
# with a short sampling window, and the perf lint gate. Intended as the
# pre-merge check for changes touching rmb-core's tick path; full runs
# use plain `cargo bench`.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== clippy (perf lints as errors) =="
cargo clippy --workspace --all-targets -- -D clippy::perf

echo "== release build =="
cargo build --release -p rmb-bench --benches

echo "== rmb_protocol + cycle_machine (short window) =="
CRITERION_SAMPLE_MS="${CRITERION_SAMPLE_MS:-20}" cargo bench -p rmb-bench --bench rmb_protocol
CRITERION_SAMPLE_MS="${CRITERION_SAMPLE_MS:-20}" cargo bench -p rmb-bench --bench cycle_machine

echo "bench smoke OK"
