#!/usr/bin/env bash
# ThreadSanitizer smoke for the shard pool and the sharded hierarchy
# engine — the only concurrency in the workspace that touches shared
# memory (rmb-async's ShardPool hands raw shard pointers to persistent
# workers; see the Safety section in crates/rmb-async/src/shard.rs).
#
# The byte-identity equivalence suite proves the sharded engine computes
# the right answer, but a data race can produce the right answer until it
# doesn't; TSan checks the synchronisation story itself (the generation/
# remaining-counter handshake and the condvar publish path).
#
# `-Zsanitizer=thread` needs a nightly toolchain with the rust-src
# component (the sanitizer runtime requires rebuilding std). On hosts
# without one — including the hermetic CI container — this script skips
# loudly and exits 0 rather than failing the suite on a missing
# toolchain.
set -euo pipefail
cd "$(dirname "$0")/.."

if ! command -v rustup >/dev/null 2>&1; then
  echo "tsan smoke SKIPPED: rustup not available; -Zsanitizer=thread needs a nightly toolchain"
  exit 0
fi
if ! rustup toolchain list 2>/dev/null | grep -q '^nightly'; then
  echo "tsan smoke SKIPPED: no nightly toolchain installed (rustup toolchain install nightly)"
  exit 0
fi
if ! rustup component list --toolchain nightly --installed 2>/dev/null | grep -q '^rust-src'; then
  echo "tsan smoke SKIPPED: nightly lacks rust-src (rustup component add rust-src --toolchain nightly)"
  exit 0
fi

host="$(rustc -vV | awk '/^host:/ { print $2 }')"
export RUSTFLAGS="-Zsanitizer=thread ${RUSTFLAGS:-}"
export RUSTDOCFLAGS="-Zsanitizer=thread"
# TSan slows execution ~5-15x; the shard-pool unit tests and the
# equivalence suite are small enough that this stays a smoke, not a soak.
echo "== tsan: rmb-async shard pool unit tests =="
cargo +nightly test -Zbuild-std --target "$host" -q -p rmb-async
echo "== tsan: rmb-hier exec_equivalence (sharded vs serial oracle) =="
cargo +nightly test -Zbuild-std --target "$host" -q -p rmb-hier --test exec_equivalence
echo "tsan smoke OK"
