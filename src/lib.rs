//! Umbrella crate for the RMB reproduction.
//!
//! Re-exports every workspace crate under one roof so that examples and
//! integration tests can say `use rmb::core::RmbNetwork;` and downstream
//! users can depend on a single crate.
//!
//! The workspace reproduces *"RMB — A Reconfigurable Multiple Bus Network"*
//! (ElGindy, Schröder, Spray, Somani, Schmeck — HPCA 1996):
//!
//! * [`core`] — the RMB itself: INCs, routing protocol, compaction
//!   protocol, odd/even cycle synchronisation, the ring network simulator.
//! * [`asynchronous`] — a threaded RMB where every INC runs on its own OS
//!   thread with handshake channels (the paper's independent-clock model).
//! * [`baselines`] — hypercube / EHC / GFC / fat-tree / mesh comparators.
//! * [`hier`] — hierarchical composition: local rings bridged through a
//!   global ring for scale-out topologies.
//! * [`serve`] — open-loop serving: streaming arrivals, admission
//!   control with explicit shedding, online latency percentiles.
//! * [`scenario`] — declarative TOML scenario harness: one file names a
//!   topology, engine, workload and fault plan; goldens pin the output.
//! * [`analysis`] — §3.2 cost models and the offline-optimal scheduler.
//! * [`workloads`] — permutations, collectives, arrival processes and
//!   trace record/replay.
//! * [`sim`] — the simulation substrate (ticks, events, stats, tracing).
//! * [`types`] — shared vocabulary.
//!
//! # Examples
//!
//! ```
//! use rmb::core::RmbNetwork;
//! use rmb::types::{MessageSpec, NodeId, RmbConfig};
//!
//! let cfg = RmbConfig::new(8, 2)?;
//! let mut net = RmbNetwork::new(cfg);
//! net.submit(MessageSpec::new(NodeId::new(0), NodeId::new(3), 4))?;
//! let report = net.run_to_quiescence(10_000);
//! assert_eq!(report.delivered, 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

pub use rmb_analysis as analysis;
pub use rmb_async as asynchronous;
pub use rmb_baselines as baselines;
pub use rmb_core as core;
pub use rmb_hier as hier;
pub use rmb_scenario as scenario;
pub use rmb_serve as serve;
pub use rmb_sim as sim;
pub use rmb_types as types;
pub use rmb_workloads as workloads;
