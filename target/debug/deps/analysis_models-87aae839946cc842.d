/root/repo/target/debug/deps/analysis_models-87aae839946cc842.d: crates/rmb-bench/benches/analysis_models.rs

/root/repo/target/debug/deps/analysis_models-87aae839946cc842: crates/rmb-bench/benches/analysis_models.rs

crates/rmb-bench/benches/analysis_models.rs:
