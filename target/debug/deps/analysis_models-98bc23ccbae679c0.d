/root/repo/target/debug/deps/analysis_models-98bc23ccbae679c0.d: crates/rmb-bench/benches/analysis_models.rs Cargo.toml

/root/repo/target/debug/deps/libanalysis_models-98bc23ccbae679c0.rmeta: crates/rmb-bench/benches/analysis_models.rs Cargo.toml

crates/rmb-bench/benches/analysis_models.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
