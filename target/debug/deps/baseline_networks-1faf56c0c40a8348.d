/root/repo/target/debug/deps/baseline_networks-1faf56c0c40a8348.d: crates/rmb-bench/benches/baseline_networks.rs

/root/repo/target/debug/deps/baseline_networks-1faf56c0c40a8348: crates/rmb-bench/benches/baseline_networks.rs

crates/rmb-bench/benches/baseline_networks.rs:
