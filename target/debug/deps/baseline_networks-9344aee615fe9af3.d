/root/repo/target/debug/deps/baseline_networks-9344aee615fe9af3.d: crates/rmb-bench/benches/baseline_networks.rs Cargo.toml

/root/repo/target/debug/deps/libbaseline_networks-9344aee615fe9af3.rmeta: crates/rmb-bench/benches/baseline_networks.rs Cargo.toml

crates/rmb-bench/benches/baseline_networks.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
