/root/repo/target/debug/deps/compare-6b10c94286aef4b9.d: crates/rmb-bench/src/bin/compare.rs Cargo.toml

/root/repo/target/debug/deps/libcompare-6b10c94286aef4b9.rmeta: crates/rmb-bench/src/bin/compare.rs Cargo.toml

crates/rmb-bench/src/bin/compare.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
