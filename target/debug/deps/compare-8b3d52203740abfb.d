/root/repo/target/debug/deps/compare-8b3d52203740abfb.d: crates/rmb-bench/src/bin/compare.rs

/root/repo/target/debug/deps/compare-8b3d52203740abfb: crates/rmb-bench/src/bin/compare.rs

crates/rmb-bench/src/bin/compare.rs:
