/root/repo/target/debug/deps/compare-ca10a4f04f55f412.d: crates/rmb-bench/src/bin/compare.rs

/root/repo/target/debug/deps/compare-ca10a4f04f55f412: crates/rmb-bench/src/bin/compare.rs

crates/rmb-bench/src/bin/compare.rs:
