/root/repo/target/debug/deps/criterion-752c767699064874.d: crates/criterion-lite/src/lib.rs

/root/repo/target/debug/deps/criterion-752c767699064874: crates/criterion-lite/src/lib.rs

crates/criterion-lite/src/lib.rs:
