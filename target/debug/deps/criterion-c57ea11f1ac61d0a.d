/root/repo/target/debug/deps/criterion-c57ea11f1ac61d0a.d: crates/criterion-lite/src/lib.rs

/root/repo/target/debug/deps/libcriterion-c57ea11f1ac61d0a.rlib: crates/criterion-lite/src/lib.rs

/root/repo/target/debug/deps/libcriterion-c57ea11f1ac61d0a.rmeta: crates/criterion-lite/src/lib.rs

crates/criterion-lite/src/lib.rs:
