/root/repo/target/debug/deps/criterion-dba9a48a9a10586e.d: crates/criterion-lite/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-dba9a48a9a10586e.rmeta: crates/criterion-lite/src/lib.rs Cargo.toml

crates/criterion-lite/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
