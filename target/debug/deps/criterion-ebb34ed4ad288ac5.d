/root/repo/target/debug/deps/criterion-ebb34ed4ad288ac5.d: crates/criterion-lite/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-ebb34ed4ad288ac5.rmeta: crates/criterion-lite/src/lib.rs Cargo.toml

crates/criterion-lite/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
