/root/repo/target/debug/deps/cross_validation-6dac9f424e88fb48.d: crates/rmb-core/tests/cross_validation.rs

/root/repo/target/debug/deps/cross_validation-6dac9f424e88fb48: crates/rmb-core/tests/cross_validation.rs

crates/rmb-core/tests/cross_validation.rs:
