/root/repo/target/debug/deps/cross_validation-7859fddab5d74249.d: crates/rmb-core/tests/cross_validation.rs Cargo.toml

/root/repo/target/debug/deps/libcross_validation-7859fddab5d74249.rmeta: crates/rmb-core/tests/cross_validation.rs Cargo.toml

crates/rmb-core/tests/cross_validation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
