/root/repo/target/debug/deps/cycle_machine-47fcd38a1d23a6b5.d: crates/rmb-bench/benches/cycle_machine.rs

/root/repo/target/debug/deps/cycle_machine-47fcd38a1d23a6b5: crates/rmb-bench/benches/cycle_machine.rs

crates/rmb-bench/benches/cycle_machine.rs:
