/root/repo/target/debug/deps/cycle_machine-d935bdc9fadbd686.d: crates/rmb-bench/benches/cycle_machine.rs Cargo.toml

/root/repo/target/debug/deps/libcycle_machine-d935bdc9fadbd686.rmeta: crates/rmb-bench/benches/cycle_machine.rs Cargo.toml

crates/rmb-bench/benches/cycle_machine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
