/root/repo/target/debug/deps/end_to_end-c40eab3845d3e6ab.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-c40eab3845d3e6ab: tests/end_to_end.rs

tests/end_to_end.rs:
