/root/repo/target/debug/deps/exhaustive_compaction-9db75414218ff7f4.d: crates/rmb-async/tests/exhaustive_compaction.rs Cargo.toml

/root/repo/target/debug/deps/libexhaustive_compaction-9db75414218ff7f4.rmeta: crates/rmb-async/tests/exhaustive_compaction.rs Cargo.toml

crates/rmb-async/tests/exhaustive_compaction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
