/root/repo/target/debug/deps/exhaustive_compaction-de131f0d8fdf6406.d: crates/rmb-async/tests/exhaustive_compaction.rs

/root/repo/target/debug/deps/exhaustive_compaction-de131f0d8fdf6406: crates/rmb-async/tests/exhaustive_compaction.rs

crates/rmb-async/tests/exhaustive_compaction.rs:
