/root/repo/target/debug/deps/experiments-5fddec6fc3202270.d: crates/rmb-bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-5fddec6fc3202270: crates/rmb-bench/src/bin/experiments.rs

crates/rmb-bench/src/bin/experiments.rs:
