/root/repo/target/debug/deps/experiments-acc32879e49222a4.d: crates/rmb-bench/src/bin/experiments.rs Cargo.toml

/root/repo/target/debug/deps/libexperiments-acc32879e49222a4.rmeta: crates/rmb-bench/src/bin/experiments.rs Cargo.toml

crates/rmb-bench/src/bin/experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
