/root/repo/target/debug/deps/experiments-e4dacd666c300bd8.d: crates/rmb-bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-e4dacd666c300bd8: crates/rmb-bench/src/bin/experiments.rs

crates/rmb-bench/src/bin/experiments.rs:
