/root/repo/target/debug/deps/faults-6b7e54237aa55ae0.d: crates/rmb-core/tests/faults.rs Cargo.toml

/root/repo/target/debug/deps/libfaults-6b7e54237aa55ae0.rmeta: crates/rmb-core/tests/faults.rs Cargo.toml

crates/rmb-core/tests/faults.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
