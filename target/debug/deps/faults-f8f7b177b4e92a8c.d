/root/repo/target/debug/deps/faults-f8f7b177b4e92a8c.d: crates/rmb-core/tests/faults.rs

/root/repo/target/debug/deps/faults-f8f7b177b4e92a8c: crates/rmb-core/tests/faults.rs

crates/rmb-core/tests/faults.rs:
