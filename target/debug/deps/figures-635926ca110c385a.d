/root/repo/target/debug/deps/figures-635926ca110c385a.d: crates/rmb-bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-635926ca110c385a: crates/rmb-bench/src/bin/figures.rs

crates/rmb-bench/src/bin/figures.rs:
