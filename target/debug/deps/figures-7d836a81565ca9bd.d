/root/repo/target/debug/deps/figures-7d836a81565ca9bd.d: crates/rmb-bench/src/bin/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-7d836a81565ca9bd.rmeta: crates/rmb-bench/src/bin/figures.rs Cargo.toml

crates/rmb-bench/src/bin/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
