/root/repo/target/debug/deps/figures-9e55c92f71a62a18.d: crates/rmb-bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-9e55c92f71a62a18: crates/rmb-bench/src/bin/figures.rs

crates/rmb-bench/src/bin/figures.rs:
