/root/repo/target/debug/deps/figures-d9b0441cabe8ad95.d: crates/rmb-bench/src/bin/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-d9b0441cabe8ad95.rmeta: crates/rmb-bench/src/bin/figures.rs Cargo.toml

crates/rmb-bench/src/bin/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
