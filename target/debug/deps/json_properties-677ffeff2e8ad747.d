/root/repo/target/debug/deps/json_properties-677ffeff2e8ad747.d: crates/rmb-types/tests/json_properties.rs

/root/repo/target/debug/deps/json_properties-677ffeff2e8ad747: crates/rmb-types/tests/json_properties.rs

crates/rmb-types/tests/json_properties.rs:
