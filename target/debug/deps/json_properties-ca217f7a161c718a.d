/root/repo/target/debug/deps/json_properties-ca217f7a161c718a.d: crates/rmb-types/tests/json_properties.rs Cargo.toml

/root/repo/target/debug/deps/libjson_properties-ca217f7a161c718a.rmeta: crates/rmb-types/tests/json_properties.rs Cargo.toml

crates/rmb-types/tests/json_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
