/root/repo/target/debug/deps/model_check-5bfe7d7ac0641db6.d: crates/rmb-core/tests/model_check.rs Cargo.toml

/root/repo/target/debug/deps/libmodel_check-5bfe7d7ac0641db6.rmeta: crates/rmb-core/tests/model_check.rs Cargo.toml

crates/rmb-core/tests/model_check.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
