/root/repo/target/debug/deps/model_check-a66b0b0782c1238e.d: crates/rmb-core/tests/model_check.rs

/root/repo/target/debug/deps/model_check-a66b0b0782c1238e: crates/rmb-core/tests/model_check.rs

crates/rmb-core/tests/model_check.rs:
