/root/repo/target/debug/deps/multicast-7b286252d3eb12b2.d: crates/rmb-core/tests/multicast.rs Cargo.toml

/root/repo/target/debug/deps/libmulticast-7b286252d3eb12b2.rmeta: crates/rmb-core/tests/multicast.rs Cargo.toml

crates/rmb-core/tests/multicast.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
