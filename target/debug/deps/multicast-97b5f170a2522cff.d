/root/repo/target/debug/deps/multicast-97b5f170a2522cff.d: crates/rmb-core/tests/multicast.rs

/root/repo/target/debug/deps/multicast-97b5f170a2522cff: crates/rmb-core/tests/multicast.rs

crates/rmb-core/tests/multicast.rs:
