/root/repo/target/debug/deps/offline_properties-39adaca6e0e5b6f5.d: crates/rmb-analysis/tests/offline_properties.rs

/root/repo/target/debug/deps/offline_properties-39adaca6e0e5b6f5: crates/rmb-analysis/tests/offline_properties.rs

crates/rmb-analysis/tests/offline_properties.rs:
