/root/repo/target/debug/deps/offline_properties-95183066c69ecfb7.d: crates/rmb-analysis/tests/offline_properties.rs Cargo.toml

/root/repo/target/debug/deps/liboffline_properties-95183066c69ecfb7.rmeta: crates/rmb-analysis/tests/offline_properties.rs Cargo.toml

crates/rmb-analysis/tests/offline_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
