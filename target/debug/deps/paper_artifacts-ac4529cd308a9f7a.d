/root/repo/target/debug/deps/paper_artifacts-ac4529cd308a9f7a.d: tests/paper_artifacts.rs

/root/repo/target/debug/deps/paper_artifacts-ac4529cd308a9f7a: tests/paper_artifacts.rs

tests/paper_artifacts.rs:
