/root/repo/target/debug/deps/paper_artifacts-d4e2c050122b43b1.d: tests/paper_artifacts.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_artifacts-d4e2c050122b43b1.rmeta: tests/paper_artifacts.rs Cargo.toml

tests/paper_artifacts.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
