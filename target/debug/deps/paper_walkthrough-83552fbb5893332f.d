/root/repo/target/debug/deps/paper_walkthrough-83552fbb5893332f.d: tests/paper_walkthrough.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_walkthrough-83552fbb5893332f.rmeta: tests/paper_walkthrough.rs Cargo.toml

tests/paper_walkthrough.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
