/root/repo/target/debug/deps/paper_walkthrough-ef2a98024768e073.d: tests/paper_walkthrough.rs

/root/repo/target/debug/deps/paper_walkthrough-ef2a98024768e073: tests/paper_walkthrough.rs

tests/paper_walkthrough.rs:
