/root/repo/target/debug/deps/parallel_determinism-3e3ffabc4d0f4c30.d: crates/rmb-bench/tests/parallel_determinism.rs

/root/repo/target/debug/deps/parallel_determinism-3e3ffabc4d0f4c30: crates/rmb-bench/tests/parallel_determinism.rs

crates/rmb-bench/tests/parallel_determinism.rs:
