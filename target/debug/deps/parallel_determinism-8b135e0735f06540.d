/root/repo/target/debug/deps/parallel_determinism-8b135e0735f06540.d: crates/rmb-bench/tests/parallel_determinism.rs Cargo.toml

/root/repo/target/debug/deps/libparallel_determinism-8b135e0735f06540.rmeta: crates/rmb-bench/tests/parallel_determinism.rs Cargo.toml

crates/rmb-bench/tests/parallel_determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
