/root/repo/target/debug/deps/properties-a0ae94ed57799cb7.d: crates/rmb-baselines/tests/properties.rs

/root/repo/target/debug/deps/properties-a0ae94ed57799cb7: crates/rmb-baselines/tests/properties.rs

crates/rmb-baselines/tests/properties.rs:
