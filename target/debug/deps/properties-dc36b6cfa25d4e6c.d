/root/repo/target/debug/deps/properties-dc36b6cfa25d4e6c.d: crates/rmb-core/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-dc36b6cfa25d4e6c.rmeta: crates/rmb-core/tests/properties.rs Cargo.toml

crates/rmb-core/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
