/root/repo/target/debug/deps/properties-e2002f167261029c.d: crates/rmb-core/tests/properties.rs

/root/repo/target/debug/deps/properties-e2002f167261029c: crates/rmb-core/tests/properties.rs

crates/rmb-core/tests/properties.rs:
