/root/repo/target/debug/deps/properties-f15f238be6522a47.d: crates/rmb-baselines/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-f15f238be6522a47.rmeta: crates/rmb-baselines/tests/properties.rs Cargo.toml

crates/rmb-baselines/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
