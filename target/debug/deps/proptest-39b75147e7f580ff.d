/root/repo/target/debug/deps/proptest-39b75147e7f580ff.d: crates/proptest-lite/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-39b75147e7f580ff.rmeta: crates/proptest-lite/src/lib.rs Cargo.toml

crates/proptest-lite/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
