/root/repo/target/debug/deps/proptest-5ad0765f388d289b.d: crates/proptest-lite/src/lib.rs

/root/repo/target/debug/deps/libproptest-5ad0765f388d289b.rlib: crates/proptest-lite/src/lib.rs

/root/repo/target/debug/deps/libproptest-5ad0765f388d289b.rmeta: crates/proptest-lite/src/lib.rs

crates/proptest-lite/src/lib.rs:
