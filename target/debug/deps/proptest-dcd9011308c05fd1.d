/root/repo/target/debug/deps/proptest-dcd9011308c05fd1.d: crates/proptest-lite/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-dcd9011308c05fd1.rmeta: crates/proptest-lite/src/lib.rs Cargo.toml

crates/proptest-lite/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
