/root/repo/target/debug/deps/proptest-e4f949b24d995b5f.d: crates/proptest-lite/src/lib.rs

/root/repo/target/debug/deps/proptest-e4f949b24d995b5f: crates/proptest-lite/src/lib.rs

crates/proptest-lite/src/lib.rs:
