/root/repo/target/debug/deps/protocol-5598ed3cd139c2db.d: crates/rmb-core/tests/protocol.rs

/root/repo/target/debug/deps/protocol-5598ed3cd139c2db: crates/rmb-core/tests/protocol.rs

crates/rmb-core/tests/protocol.rs:
