/root/repo/target/debug/deps/protocol-d954589317511b44.d: crates/rmb-core/tests/protocol.rs Cargo.toml

/root/repo/target/debug/deps/libprotocol-d954589317511b44.rmeta: crates/rmb-core/tests/protocol.rs Cargo.toml

crates/rmb-core/tests/protocol.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
