/root/repo/target/debug/deps/public_api-13d95792f949b7bb.d: tests/public_api.rs Cargo.toml

/root/repo/target/debug/deps/libpublic_api-13d95792f949b7bb.rmeta: tests/public_api.rs Cargo.toml

tests/public_api.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
