/root/repo/target/debug/deps/public_api-a14783ca041b0bfc.d: tests/public_api.rs

/root/repo/target/debug/deps/public_api-a14783ca041b0bfc: tests/public_api.rs

tests/public_api.rs:
