/root/repo/target/debug/deps/rmb-1b619ecff64f3ba8.d: src/lib.rs

/root/repo/target/debug/deps/librmb-1b619ecff64f3ba8.rlib: src/lib.rs

/root/repo/target/debug/deps/librmb-1b619ecff64f3ba8.rmeta: src/lib.rs

src/lib.rs:
