/root/repo/target/debug/deps/rmb-51cfb0428c5337e0.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librmb-51cfb0428c5337e0.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
