/root/repo/target/debug/deps/rmb-ef464d02d6e97830.d: src/lib.rs

/root/repo/target/debug/deps/rmb-ef464d02d6e97830: src/lib.rs

src/lib.rs:
