/root/repo/target/debug/deps/rmb-f79db69ebdcd0e1c.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librmb-f79db69ebdcd0e1c.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
