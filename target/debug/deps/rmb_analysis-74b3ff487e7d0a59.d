/root/repo/target/debug/deps/rmb_analysis-74b3ff487e7d0a59.d: crates/rmb-analysis/src/lib.rs crates/rmb-analysis/src/cost.rs crates/rmb-analysis/src/dual_ring.rs crates/rmb-analysis/src/grid.rs crates/rmb-analysis/src/lattice.rs crates/rmb-analysis/src/model.rs crates/rmb-analysis/src/offline.rs crates/rmb-analysis/src/rmb_adapter.rs crates/rmb-analysis/src/report.rs crates/rmb-analysis/src/structural.rs

/root/repo/target/debug/deps/librmb_analysis-74b3ff487e7d0a59.rlib: crates/rmb-analysis/src/lib.rs crates/rmb-analysis/src/cost.rs crates/rmb-analysis/src/dual_ring.rs crates/rmb-analysis/src/grid.rs crates/rmb-analysis/src/lattice.rs crates/rmb-analysis/src/model.rs crates/rmb-analysis/src/offline.rs crates/rmb-analysis/src/rmb_adapter.rs crates/rmb-analysis/src/report.rs crates/rmb-analysis/src/structural.rs

/root/repo/target/debug/deps/librmb_analysis-74b3ff487e7d0a59.rmeta: crates/rmb-analysis/src/lib.rs crates/rmb-analysis/src/cost.rs crates/rmb-analysis/src/dual_ring.rs crates/rmb-analysis/src/grid.rs crates/rmb-analysis/src/lattice.rs crates/rmb-analysis/src/model.rs crates/rmb-analysis/src/offline.rs crates/rmb-analysis/src/rmb_adapter.rs crates/rmb-analysis/src/report.rs crates/rmb-analysis/src/structural.rs

crates/rmb-analysis/src/lib.rs:
crates/rmb-analysis/src/cost.rs:
crates/rmb-analysis/src/dual_ring.rs:
crates/rmb-analysis/src/grid.rs:
crates/rmb-analysis/src/lattice.rs:
crates/rmb-analysis/src/model.rs:
crates/rmb-analysis/src/offline.rs:
crates/rmb-analysis/src/rmb_adapter.rs:
crates/rmb-analysis/src/report.rs:
crates/rmb-analysis/src/structural.rs:
