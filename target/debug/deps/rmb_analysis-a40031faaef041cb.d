/root/repo/target/debug/deps/rmb_analysis-a40031faaef041cb.d: crates/rmb-analysis/src/lib.rs crates/rmb-analysis/src/cost.rs crates/rmb-analysis/src/dual_ring.rs crates/rmb-analysis/src/grid.rs crates/rmb-analysis/src/lattice.rs crates/rmb-analysis/src/model.rs crates/rmb-analysis/src/offline.rs crates/rmb-analysis/src/rmb_adapter.rs crates/rmb-analysis/src/report.rs crates/rmb-analysis/src/structural.rs Cargo.toml

/root/repo/target/debug/deps/librmb_analysis-a40031faaef041cb.rmeta: crates/rmb-analysis/src/lib.rs crates/rmb-analysis/src/cost.rs crates/rmb-analysis/src/dual_ring.rs crates/rmb-analysis/src/grid.rs crates/rmb-analysis/src/lattice.rs crates/rmb-analysis/src/model.rs crates/rmb-analysis/src/offline.rs crates/rmb-analysis/src/rmb_adapter.rs crates/rmb-analysis/src/report.rs crates/rmb-analysis/src/structural.rs Cargo.toml

crates/rmb-analysis/src/lib.rs:
crates/rmb-analysis/src/cost.rs:
crates/rmb-analysis/src/dual_ring.rs:
crates/rmb-analysis/src/grid.rs:
crates/rmb-analysis/src/lattice.rs:
crates/rmb-analysis/src/model.rs:
crates/rmb-analysis/src/offline.rs:
crates/rmb-analysis/src/rmb_adapter.rs:
crates/rmb-analysis/src/report.rs:
crates/rmb-analysis/src/structural.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
