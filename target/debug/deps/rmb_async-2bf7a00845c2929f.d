/root/repo/target/debug/deps/rmb_async-2bf7a00845c2929f.d: crates/rmb-async/src/lib.rs crates/rmb-async/src/compactor.rs crates/rmb-async/src/cycle_ring.rs Cargo.toml

/root/repo/target/debug/deps/librmb_async-2bf7a00845c2929f.rmeta: crates/rmb-async/src/lib.rs crates/rmb-async/src/compactor.rs crates/rmb-async/src/cycle_ring.rs Cargo.toml

crates/rmb-async/src/lib.rs:
crates/rmb-async/src/compactor.rs:
crates/rmb-async/src/cycle_ring.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
