/root/repo/target/debug/deps/rmb_async-84b68ea4663e5038.d: crates/rmb-async/src/lib.rs crates/rmb-async/src/compactor.rs crates/rmb-async/src/cycle_ring.rs Cargo.toml

/root/repo/target/debug/deps/librmb_async-84b68ea4663e5038.rmeta: crates/rmb-async/src/lib.rs crates/rmb-async/src/compactor.rs crates/rmb-async/src/cycle_ring.rs Cargo.toml

crates/rmb-async/src/lib.rs:
crates/rmb-async/src/compactor.rs:
crates/rmb-async/src/cycle_ring.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
