/root/repo/target/debug/deps/rmb_async-b4d13509bd61f5d5.d: crates/rmb-async/src/lib.rs crates/rmb-async/src/compactor.rs crates/rmb-async/src/cycle_ring.rs

/root/repo/target/debug/deps/librmb_async-b4d13509bd61f5d5.rlib: crates/rmb-async/src/lib.rs crates/rmb-async/src/compactor.rs crates/rmb-async/src/cycle_ring.rs

/root/repo/target/debug/deps/librmb_async-b4d13509bd61f5d5.rmeta: crates/rmb-async/src/lib.rs crates/rmb-async/src/compactor.rs crates/rmb-async/src/cycle_ring.rs

crates/rmb-async/src/lib.rs:
crates/rmb-async/src/compactor.rs:
crates/rmb-async/src/cycle_ring.rs:
