/root/repo/target/debug/deps/rmb_async-d751fad625048d02.d: crates/rmb-async/src/lib.rs crates/rmb-async/src/compactor.rs crates/rmb-async/src/cycle_ring.rs

/root/repo/target/debug/deps/rmb_async-d751fad625048d02: crates/rmb-async/src/lib.rs crates/rmb-async/src/compactor.rs crates/rmb-async/src/cycle_ring.rs

crates/rmb-async/src/lib.rs:
crates/rmb-async/src/compactor.rs:
crates/rmb-async/src/cycle_ring.rs:
