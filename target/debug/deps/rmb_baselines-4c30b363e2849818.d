/root/repo/target/debug/deps/rmb_baselines-4c30b363e2849818.d: crates/rmb-baselines/src/lib.rs crates/rmb-baselines/src/ehc.rs crates/rmb-baselines/src/fattree.rs crates/rmb-baselines/src/graph.rs crates/rmb-baselines/src/hypercube.rs crates/rmb-baselines/src/mesh.rs crates/rmb-baselines/src/torus.rs crates/rmb-baselines/src/traits.rs crates/rmb-baselines/src/wormhole.rs Cargo.toml

/root/repo/target/debug/deps/librmb_baselines-4c30b363e2849818.rmeta: crates/rmb-baselines/src/lib.rs crates/rmb-baselines/src/ehc.rs crates/rmb-baselines/src/fattree.rs crates/rmb-baselines/src/graph.rs crates/rmb-baselines/src/hypercube.rs crates/rmb-baselines/src/mesh.rs crates/rmb-baselines/src/torus.rs crates/rmb-baselines/src/traits.rs crates/rmb-baselines/src/wormhole.rs Cargo.toml

crates/rmb-baselines/src/lib.rs:
crates/rmb-baselines/src/ehc.rs:
crates/rmb-baselines/src/fattree.rs:
crates/rmb-baselines/src/graph.rs:
crates/rmb-baselines/src/hypercube.rs:
crates/rmb-baselines/src/mesh.rs:
crates/rmb-baselines/src/torus.rs:
crates/rmb-baselines/src/traits.rs:
crates/rmb-baselines/src/wormhole.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
