/root/repo/target/debug/deps/rmb_baselines-76f2502f3eb38143.d: crates/rmb-baselines/src/lib.rs crates/rmb-baselines/src/ehc.rs crates/rmb-baselines/src/fattree.rs crates/rmb-baselines/src/graph.rs crates/rmb-baselines/src/hypercube.rs crates/rmb-baselines/src/mesh.rs crates/rmb-baselines/src/torus.rs crates/rmb-baselines/src/traits.rs crates/rmb-baselines/src/wormhole.rs

/root/repo/target/debug/deps/rmb_baselines-76f2502f3eb38143: crates/rmb-baselines/src/lib.rs crates/rmb-baselines/src/ehc.rs crates/rmb-baselines/src/fattree.rs crates/rmb-baselines/src/graph.rs crates/rmb-baselines/src/hypercube.rs crates/rmb-baselines/src/mesh.rs crates/rmb-baselines/src/torus.rs crates/rmb-baselines/src/traits.rs crates/rmb-baselines/src/wormhole.rs

crates/rmb-baselines/src/lib.rs:
crates/rmb-baselines/src/ehc.rs:
crates/rmb-baselines/src/fattree.rs:
crates/rmb-baselines/src/graph.rs:
crates/rmb-baselines/src/hypercube.rs:
crates/rmb-baselines/src/mesh.rs:
crates/rmb-baselines/src/torus.rs:
crates/rmb-baselines/src/traits.rs:
crates/rmb-baselines/src/wormhole.rs:
