/root/repo/target/debug/deps/rmb_baselines-abef25081981b967.d: crates/rmb-baselines/src/lib.rs crates/rmb-baselines/src/ehc.rs crates/rmb-baselines/src/fattree.rs crates/rmb-baselines/src/graph.rs crates/rmb-baselines/src/hypercube.rs crates/rmb-baselines/src/mesh.rs crates/rmb-baselines/src/torus.rs crates/rmb-baselines/src/traits.rs crates/rmb-baselines/src/wormhole.rs

/root/repo/target/debug/deps/librmb_baselines-abef25081981b967.rlib: crates/rmb-baselines/src/lib.rs crates/rmb-baselines/src/ehc.rs crates/rmb-baselines/src/fattree.rs crates/rmb-baselines/src/graph.rs crates/rmb-baselines/src/hypercube.rs crates/rmb-baselines/src/mesh.rs crates/rmb-baselines/src/torus.rs crates/rmb-baselines/src/traits.rs crates/rmb-baselines/src/wormhole.rs

/root/repo/target/debug/deps/librmb_baselines-abef25081981b967.rmeta: crates/rmb-baselines/src/lib.rs crates/rmb-baselines/src/ehc.rs crates/rmb-baselines/src/fattree.rs crates/rmb-baselines/src/graph.rs crates/rmb-baselines/src/hypercube.rs crates/rmb-baselines/src/mesh.rs crates/rmb-baselines/src/torus.rs crates/rmb-baselines/src/traits.rs crates/rmb-baselines/src/wormhole.rs

crates/rmb-baselines/src/lib.rs:
crates/rmb-baselines/src/ehc.rs:
crates/rmb-baselines/src/fattree.rs:
crates/rmb-baselines/src/graph.rs:
crates/rmb-baselines/src/hypercube.rs:
crates/rmb-baselines/src/mesh.rs:
crates/rmb-baselines/src/torus.rs:
crates/rmb-baselines/src/traits.rs:
crates/rmb-baselines/src/wormhole.rs:
