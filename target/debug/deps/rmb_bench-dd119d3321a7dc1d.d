/root/repo/target/debug/deps/rmb_bench-dd119d3321a7dc1d.d: crates/rmb-bench/src/lib.rs crates/rmb-bench/src/experiments/mod.rs crates/rmb-bench/src/experiments/ablation.rs crates/rmb-bench/src/experiments/compare.rs crates/rmb-bench/src/experiments/competitive.rs crates/rmb-bench/src/experiments/deadlock.rs crates/rmb-bench/src/experiments/extensions.rs crates/rmb-bench/src/experiments/fault_tolerance.rs crates/rmb-bench/src/experiments/lemma1.rs crates/rmb-bench/src/experiments/load.rs crates/rmb-bench/src/experiments/permutation.rs crates/rmb-bench/src/experiments/scaling.rs crates/rmb-bench/src/experiments/theorem1.rs crates/rmb-bench/src/figures.rs crates/rmb-bench/src/rows.rs crates/rmb-bench/src/tables.rs Cargo.toml

/root/repo/target/debug/deps/librmb_bench-dd119d3321a7dc1d.rmeta: crates/rmb-bench/src/lib.rs crates/rmb-bench/src/experiments/mod.rs crates/rmb-bench/src/experiments/ablation.rs crates/rmb-bench/src/experiments/compare.rs crates/rmb-bench/src/experiments/competitive.rs crates/rmb-bench/src/experiments/deadlock.rs crates/rmb-bench/src/experiments/extensions.rs crates/rmb-bench/src/experiments/fault_tolerance.rs crates/rmb-bench/src/experiments/lemma1.rs crates/rmb-bench/src/experiments/load.rs crates/rmb-bench/src/experiments/permutation.rs crates/rmb-bench/src/experiments/scaling.rs crates/rmb-bench/src/experiments/theorem1.rs crates/rmb-bench/src/figures.rs crates/rmb-bench/src/rows.rs crates/rmb-bench/src/tables.rs Cargo.toml

crates/rmb-bench/src/lib.rs:
crates/rmb-bench/src/experiments/mod.rs:
crates/rmb-bench/src/experiments/ablation.rs:
crates/rmb-bench/src/experiments/compare.rs:
crates/rmb-bench/src/experiments/competitive.rs:
crates/rmb-bench/src/experiments/deadlock.rs:
crates/rmb-bench/src/experiments/extensions.rs:
crates/rmb-bench/src/experiments/fault_tolerance.rs:
crates/rmb-bench/src/experiments/lemma1.rs:
crates/rmb-bench/src/experiments/load.rs:
crates/rmb-bench/src/experiments/permutation.rs:
crates/rmb-bench/src/experiments/scaling.rs:
crates/rmb-bench/src/experiments/theorem1.rs:
crates/rmb-bench/src/figures.rs:
crates/rmb-bench/src/rows.rs:
crates/rmb-bench/src/tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
