/root/repo/target/debug/deps/rmb_core-8e3d546316c16216.d: crates/rmb-core/src/lib.rs crates/rmb-core/src/compaction.rs crates/rmb-core/src/cycle.rs crates/rmb-core/src/inc.rs crates/rmb-core/src/invariants.rs crates/rmb-core/src/microsim.rs crates/rmb-core/src/network.rs crates/rmb-core/src/options.rs crates/rmb-core/src/render.rs crates/rmb-core/src/status.rs crates/rmb-core/src/virtual_bus.rs

/root/repo/target/debug/deps/rmb_core-8e3d546316c16216: crates/rmb-core/src/lib.rs crates/rmb-core/src/compaction.rs crates/rmb-core/src/cycle.rs crates/rmb-core/src/inc.rs crates/rmb-core/src/invariants.rs crates/rmb-core/src/microsim.rs crates/rmb-core/src/network.rs crates/rmb-core/src/options.rs crates/rmb-core/src/render.rs crates/rmb-core/src/status.rs crates/rmb-core/src/virtual_bus.rs

crates/rmb-core/src/lib.rs:
crates/rmb-core/src/compaction.rs:
crates/rmb-core/src/cycle.rs:
crates/rmb-core/src/inc.rs:
crates/rmb-core/src/invariants.rs:
crates/rmb-core/src/microsim.rs:
crates/rmb-core/src/network.rs:
crates/rmb-core/src/options.rs:
crates/rmb-core/src/render.rs:
crates/rmb-core/src/status.rs:
crates/rmb-core/src/virtual_bus.rs:
