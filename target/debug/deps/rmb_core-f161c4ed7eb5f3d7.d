/root/repo/target/debug/deps/rmb_core-f161c4ed7eb5f3d7.d: crates/rmb-core/src/lib.rs crates/rmb-core/src/compaction.rs crates/rmb-core/src/cycle.rs crates/rmb-core/src/inc.rs crates/rmb-core/src/invariants.rs crates/rmb-core/src/microsim.rs crates/rmb-core/src/network.rs crates/rmb-core/src/options.rs crates/rmb-core/src/render.rs crates/rmb-core/src/status.rs crates/rmb-core/src/virtual_bus.rs Cargo.toml

/root/repo/target/debug/deps/librmb_core-f161c4ed7eb5f3d7.rmeta: crates/rmb-core/src/lib.rs crates/rmb-core/src/compaction.rs crates/rmb-core/src/cycle.rs crates/rmb-core/src/inc.rs crates/rmb-core/src/invariants.rs crates/rmb-core/src/microsim.rs crates/rmb-core/src/network.rs crates/rmb-core/src/options.rs crates/rmb-core/src/render.rs crates/rmb-core/src/status.rs crates/rmb-core/src/virtual_bus.rs Cargo.toml

crates/rmb-core/src/lib.rs:
crates/rmb-core/src/compaction.rs:
crates/rmb-core/src/cycle.rs:
crates/rmb-core/src/inc.rs:
crates/rmb-core/src/invariants.rs:
crates/rmb-core/src/microsim.rs:
crates/rmb-core/src/network.rs:
crates/rmb-core/src/options.rs:
crates/rmb-core/src/render.rs:
crates/rmb-core/src/status.rs:
crates/rmb-core/src/virtual_bus.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
