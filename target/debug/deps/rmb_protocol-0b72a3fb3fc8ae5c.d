/root/repo/target/debug/deps/rmb_protocol-0b72a3fb3fc8ae5c.d: crates/rmb-bench/benches/rmb_protocol.rs

/root/repo/target/debug/deps/rmb_protocol-0b72a3fb3fc8ae5c: crates/rmb-bench/benches/rmb_protocol.rs

crates/rmb-bench/benches/rmb_protocol.rs:
