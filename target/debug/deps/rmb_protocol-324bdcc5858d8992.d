/root/repo/target/debug/deps/rmb_protocol-324bdcc5858d8992.d: crates/rmb-bench/benches/rmb_protocol.rs Cargo.toml

/root/repo/target/debug/deps/librmb_protocol-324bdcc5858d8992.rmeta: crates/rmb-bench/benches/rmb_protocol.rs Cargo.toml

crates/rmb-bench/benches/rmb_protocol.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
