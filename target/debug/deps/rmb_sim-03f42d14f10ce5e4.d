/root/repo/target/debug/deps/rmb_sim-03f42d14f10ce5e4.d: crates/rmb-sim/src/lib.rs crates/rmb-sim/src/clock.rs crates/rmb-sim/src/par.rs crates/rmb-sim/src/queue.rs crates/rmb-sim/src/rng.rs crates/rmb-sim/src/stats.rs crates/rmb-sim/src/trace.rs

/root/repo/target/debug/deps/librmb_sim-03f42d14f10ce5e4.rlib: crates/rmb-sim/src/lib.rs crates/rmb-sim/src/clock.rs crates/rmb-sim/src/par.rs crates/rmb-sim/src/queue.rs crates/rmb-sim/src/rng.rs crates/rmb-sim/src/stats.rs crates/rmb-sim/src/trace.rs

/root/repo/target/debug/deps/librmb_sim-03f42d14f10ce5e4.rmeta: crates/rmb-sim/src/lib.rs crates/rmb-sim/src/clock.rs crates/rmb-sim/src/par.rs crates/rmb-sim/src/queue.rs crates/rmb-sim/src/rng.rs crates/rmb-sim/src/stats.rs crates/rmb-sim/src/trace.rs

crates/rmb-sim/src/lib.rs:
crates/rmb-sim/src/clock.rs:
crates/rmb-sim/src/par.rs:
crates/rmb-sim/src/queue.rs:
crates/rmb-sim/src/rng.rs:
crates/rmb-sim/src/stats.rs:
crates/rmb-sim/src/trace.rs:
