/root/repo/target/debug/deps/rmb_sim-341534a6bec06b73.d: crates/rmb-sim/src/lib.rs crates/rmb-sim/src/clock.rs crates/rmb-sim/src/par.rs crates/rmb-sim/src/queue.rs crates/rmb-sim/src/rng.rs crates/rmb-sim/src/stats.rs crates/rmb-sim/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/librmb_sim-341534a6bec06b73.rmeta: crates/rmb-sim/src/lib.rs crates/rmb-sim/src/clock.rs crates/rmb-sim/src/par.rs crates/rmb-sim/src/queue.rs crates/rmb-sim/src/rng.rs crates/rmb-sim/src/stats.rs crates/rmb-sim/src/trace.rs Cargo.toml

crates/rmb-sim/src/lib.rs:
crates/rmb-sim/src/clock.rs:
crates/rmb-sim/src/par.rs:
crates/rmb-sim/src/queue.rs:
crates/rmb-sim/src/rng.rs:
crates/rmb-sim/src/stats.rs:
crates/rmb-sim/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
