/root/repo/target/debug/deps/rmb_sim-bd6f79b2529a6793.d: crates/rmb-sim/src/lib.rs crates/rmb-sim/src/clock.rs crates/rmb-sim/src/par.rs crates/rmb-sim/src/queue.rs crates/rmb-sim/src/rng.rs crates/rmb-sim/src/stats.rs crates/rmb-sim/src/trace.rs

/root/repo/target/debug/deps/rmb_sim-bd6f79b2529a6793: crates/rmb-sim/src/lib.rs crates/rmb-sim/src/clock.rs crates/rmb-sim/src/par.rs crates/rmb-sim/src/queue.rs crates/rmb-sim/src/rng.rs crates/rmb-sim/src/stats.rs crates/rmb-sim/src/trace.rs

crates/rmb-sim/src/lib.rs:
crates/rmb-sim/src/clock.rs:
crates/rmb-sim/src/par.rs:
crates/rmb-sim/src/queue.rs:
crates/rmb-sim/src/rng.rs:
crates/rmb-sim/src/stats.rs:
crates/rmb-sim/src/trace.rs:
