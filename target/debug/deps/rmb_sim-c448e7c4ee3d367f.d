/root/repo/target/debug/deps/rmb_sim-c448e7c4ee3d367f.d: crates/rmb-sim/src/lib.rs crates/rmb-sim/src/clock.rs crates/rmb-sim/src/par.rs crates/rmb-sim/src/queue.rs crates/rmb-sim/src/rng.rs crates/rmb-sim/src/stats.rs crates/rmb-sim/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/librmb_sim-c448e7c4ee3d367f.rmeta: crates/rmb-sim/src/lib.rs crates/rmb-sim/src/clock.rs crates/rmb-sim/src/par.rs crates/rmb-sim/src/queue.rs crates/rmb-sim/src/rng.rs crates/rmb-sim/src/stats.rs crates/rmb-sim/src/trace.rs Cargo.toml

crates/rmb-sim/src/lib.rs:
crates/rmb-sim/src/clock.rs:
crates/rmb-sim/src/par.rs:
crates/rmb-sim/src/queue.rs:
crates/rmb-sim/src/rng.rs:
crates/rmb-sim/src/stats.rs:
crates/rmb-sim/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
