/root/repo/target/debug/deps/rmb_types-0d0b7bd8ac49c290.d: crates/rmb-types/src/lib.rs crates/rmb-types/src/config.rs crates/rmb-types/src/error.rs crates/rmb-types/src/fault.rs crates/rmb-types/src/flit.rs crates/rmb-types/src/ids.rs crates/rmb-types/src/json.rs crates/rmb-types/src/message.rs Cargo.toml

/root/repo/target/debug/deps/librmb_types-0d0b7bd8ac49c290.rmeta: crates/rmb-types/src/lib.rs crates/rmb-types/src/config.rs crates/rmb-types/src/error.rs crates/rmb-types/src/fault.rs crates/rmb-types/src/flit.rs crates/rmb-types/src/ids.rs crates/rmb-types/src/json.rs crates/rmb-types/src/message.rs Cargo.toml

crates/rmb-types/src/lib.rs:
crates/rmb-types/src/config.rs:
crates/rmb-types/src/error.rs:
crates/rmb-types/src/fault.rs:
crates/rmb-types/src/flit.rs:
crates/rmb-types/src/ids.rs:
crates/rmb-types/src/json.rs:
crates/rmb-types/src/message.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
