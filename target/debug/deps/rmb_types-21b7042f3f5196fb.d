/root/repo/target/debug/deps/rmb_types-21b7042f3f5196fb.d: crates/rmb-types/src/lib.rs crates/rmb-types/src/config.rs crates/rmb-types/src/error.rs crates/rmb-types/src/fault.rs crates/rmb-types/src/flit.rs crates/rmb-types/src/ids.rs crates/rmb-types/src/json.rs crates/rmb-types/src/message.rs

/root/repo/target/debug/deps/librmb_types-21b7042f3f5196fb.rlib: crates/rmb-types/src/lib.rs crates/rmb-types/src/config.rs crates/rmb-types/src/error.rs crates/rmb-types/src/fault.rs crates/rmb-types/src/flit.rs crates/rmb-types/src/ids.rs crates/rmb-types/src/json.rs crates/rmb-types/src/message.rs

/root/repo/target/debug/deps/librmb_types-21b7042f3f5196fb.rmeta: crates/rmb-types/src/lib.rs crates/rmb-types/src/config.rs crates/rmb-types/src/error.rs crates/rmb-types/src/fault.rs crates/rmb-types/src/flit.rs crates/rmb-types/src/ids.rs crates/rmb-types/src/json.rs crates/rmb-types/src/message.rs

crates/rmb-types/src/lib.rs:
crates/rmb-types/src/config.rs:
crates/rmb-types/src/error.rs:
crates/rmb-types/src/fault.rs:
crates/rmb-types/src/flit.rs:
crates/rmb-types/src/ids.rs:
crates/rmb-types/src/json.rs:
crates/rmb-types/src/message.rs:
