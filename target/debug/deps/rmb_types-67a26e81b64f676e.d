/root/repo/target/debug/deps/rmb_types-67a26e81b64f676e.d: crates/rmb-types/src/lib.rs crates/rmb-types/src/config.rs crates/rmb-types/src/error.rs crates/rmb-types/src/fault.rs crates/rmb-types/src/flit.rs crates/rmb-types/src/ids.rs crates/rmb-types/src/json.rs crates/rmb-types/src/message.rs

/root/repo/target/debug/deps/rmb_types-67a26e81b64f676e: crates/rmb-types/src/lib.rs crates/rmb-types/src/config.rs crates/rmb-types/src/error.rs crates/rmb-types/src/fault.rs crates/rmb-types/src/flit.rs crates/rmb-types/src/ids.rs crates/rmb-types/src/json.rs crates/rmb-types/src/message.rs

crates/rmb-types/src/lib.rs:
crates/rmb-types/src/config.rs:
crates/rmb-types/src/error.rs:
crates/rmb-types/src/fault.rs:
crates/rmb-types/src/flit.rs:
crates/rmb-types/src/ids.rs:
crates/rmb-types/src/json.rs:
crates/rmb-types/src/message.rs:
