/root/repo/target/debug/deps/rmb_workloads-4831b9d3186fe29b.d: crates/rmb-workloads/src/lib.rs crates/rmb-workloads/src/arrival.rs crates/rmb-workloads/src/faults.rs crates/rmb-workloads/src/permutation.rs crates/rmb-workloads/src/sizes.rs crates/rmb-workloads/src/suite.rs

/root/repo/target/debug/deps/rmb_workloads-4831b9d3186fe29b: crates/rmb-workloads/src/lib.rs crates/rmb-workloads/src/arrival.rs crates/rmb-workloads/src/faults.rs crates/rmb-workloads/src/permutation.rs crates/rmb-workloads/src/sizes.rs crates/rmb-workloads/src/suite.rs

crates/rmb-workloads/src/lib.rs:
crates/rmb-workloads/src/arrival.rs:
crates/rmb-workloads/src/faults.rs:
crates/rmb-workloads/src/permutation.rs:
crates/rmb-workloads/src/sizes.rs:
crates/rmb-workloads/src/suite.rs:
