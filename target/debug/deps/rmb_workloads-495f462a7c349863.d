/root/repo/target/debug/deps/rmb_workloads-495f462a7c349863.d: crates/rmb-workloads/src/lib.rs crates/rmb-workloads/src/arrival.rs crates/rmb-workloads/src/faults.rs crates/rmb-workloads/src/permutation.rs crates/rmb-workloads/src/sizes.rs crates/rmb-workloads/src/suite.rs Cargo.toml

/root/repo/target/debug/deps/librmb_workloads-495f462a7c349863.rmeta: crates/rmb-workloads/src/lib.rs crates/rmb-workloads/src/arrival.rs crates/rmb-workloads/src/faults.rs crates/rmb-workloads/src/permutation.rs crates/rmb-workloads/src/sizes.rs crates/rmb-workloads/src/suite.rs Cargo.toml

crates/rmb-workloads/src/lib.rs:
crates/rmb-workloads/src/arrival.rs:
crates/rmb-workloads/src/faults.rs:
crates/rmb-workloads/src/permutation.rs:
crates/rmb-workloads/src/sizes.rs:
crates/rmb-workloads/src/suite.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
