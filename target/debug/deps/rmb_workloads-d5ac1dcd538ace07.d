/root/repo/target/debug/deps/rmb_workloads-d5ac1dcd538ace07.d: crates/rmb-workloads/src/lib.rs crates/rmb-workloads/src/arrival.rs crates/rmb-workloads/src/faults.rs crates/rmb-workloads/src/permutation.rs crates/rmb-workloads/src/sizes.rs crates/rmb-workloads/src/suite.rs

/root/repo/target/debug/deps/librmb_workloads-d5ac1dcd538ace07.rlib: crates/rmb-workloads/src/lib.rs crates/rmb-workloads/src/arrival.rs crates/rmb-workloads/src/faults.rs crates/rmb-workloads/src/permutation.rs crates/rmb-workloads/src/sizes.rs crates/rmb-workloads/src/suite.rs

/root/repo/target/debug/deps/librmb_workloads-d5ac1dcd538ace07.rmeta: crates/rmb-workloads/src/lib.rs crates/rmb-workloads/src/arrival.rs crates/rmb-workloads/src/faults.rs crates/rmb-workloads/src/permutation.rs crates/rmb-workloads/src/sizes.rs crates/rmb-workloads/src/suite.rs

crates/rmb-workloads/src/lib.rs:
crates/rmb-workloads/src/arrival.rs:
crates/rmb-workloads/src/faults.rs:
crates/rmb-workloads/src/permutation.rs:
crates/rmb-workloads/src/sizes.rs:
crates/rmb-workloads/src/suite.rs:
