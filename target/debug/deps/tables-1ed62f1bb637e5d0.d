/root/repo/target/debug/deps/tables-1ed62f1bb637e5d0.d: crates/rmb-bench/src/bin/tables.rs Cargo.toml

/root/repo/target/debug/deps/libtables-1ed62f1bb637e5d0.rmeta: crates/rmb-bench/src/bin/tables.rs Cargo.toml

crates/rmb-bench/src/bin/tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
