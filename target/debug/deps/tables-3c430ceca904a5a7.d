/root/repo/target/debug/deps/tables-3c430ceca904a5a7.d: crates/rmb-bench/src/bin/tables.rs

/root/repo/target/debug/deps/tables-3c430ceca904a5a7: crates/rmb-bench/src/bin/tables.rs

crates/rmb-bench/src/bin/tables.rs:
