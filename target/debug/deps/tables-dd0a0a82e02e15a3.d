/root/repo/target/debug/deps/tables-dd0a0a82e02e15a3.d: crates/rmb-bench/src/bin/tables.rs

/root/repo/target/debug/deps/tables-dd0a0a82e02e15a3: crates/rmb-bench/src/bin/tables.rs

crates/rmb-bench/src/bin/tables.rs:
