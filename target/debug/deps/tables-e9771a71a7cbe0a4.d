/root/repo/target/debug/deps/tables-e9771a71a7cbe0a4.d: crates/rmb-bench/src/bin/tables.rs Cargo.toml

/root/repo/target/debug/deps/libtables-e9771a71a7cbe0a4.rmeta: crates/rmb-bench/src/bin/tables.rs Cargo.toml

crates/rmb-bench/src/bin/tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
