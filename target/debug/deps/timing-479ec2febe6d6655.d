/root/repo/target/debug/deps/timing-479ec2febe6d6655.d: crates/rmb-core/tests/timing.rs

/root/repo/target/debug/deps/timing-479ec2febe6d6655: crates/rmb-core/tests/timing.rs

crates/rmb-core/tests/timing.rs:
