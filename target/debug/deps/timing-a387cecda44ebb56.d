/root/repo/target/debug/deps/timing-a387cecda44ebb56.d: crates/rmb-core/tests/timing.rs Cargo.toml

/root/repo/target/debug/deps/libtiming-a387cecda44ebb56.rmeta: crates/rmb-core/tests/timing.rs Cargo.toml

crates/rmb-core/tests/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
