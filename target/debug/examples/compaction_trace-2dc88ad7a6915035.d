/root/repo/target/debug/examples/compaction_trace-2dc88ad7a6915035.d: examples/compaction_trace.rs Cargo.toml

/root/repo/target/debug/examples/libcompaction_trace-2dc88ad7a6915035.rmeta: examples/compaction_trace.rs Cargo.toml

examples/compaction_trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
