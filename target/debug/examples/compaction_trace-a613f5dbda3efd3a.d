/root/repo/target/debug/examples/compaction_trace-a613f5dbda3efd3a.d: examples/compaction_trace.rs

/root/repo/target/debug/examples/compaction_trace-a613f5dbda3efd3a: examples/compaction_trace.rs

examples/compaction_trace.rs:
