/root/repo/target/debug/examples/cost_comparison-819ecd577ffeb86a.d: examples/cost_comparison.rs Cargo.toml

/root/repo/target/debug/examples/libcost_comparison-819ecd577ffeb86a.rmeta: examples/cost_comparison.rs Cargo.toml

examples/cost_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
