/root/repo/target/debug/examples/cost_comparison-b8dcfab19dc2e4f7.d: examples/cost_comparison.rs

/root/repo/target/debug/examples/cost_comparison-b8dcfab19dc2e4f7: examples/cost_comparison.rs

examples/cost_comparison.rs:
