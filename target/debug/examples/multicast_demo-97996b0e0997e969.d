/root/repo/target/debug/examples/multicast_demo-97996b0e0997e969.d: examples/multicast_demo.rs Cargo.toml

/root/repo/target/debug/examples/libmulticast_demo-97996b0e0997e969.rmeta: examples/multicast_demo.rs Cargo.toml

examples/multicast_demo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
