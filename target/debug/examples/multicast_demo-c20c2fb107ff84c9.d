/root/repo/target/debug/examples/multicast_demo-c20c2fb107ff84c9.d: examples/multicast_demo.rs

/root/repo/target/debug/examples/multicast_demo-c20c2fb107ff84c9: examples/multicast_demo.rs

examples/multicast_demo.rs:
