/root/repo/target/debug/examples/permutation_routing-618c6cb185e82d3c.d: examples/permutation_routing.rs

/root/repo/target/debug/examples/permutation_routing-618c6cb185e82d3c: examples/permutation_routing.rs

examples/permutation_routing.rs:
