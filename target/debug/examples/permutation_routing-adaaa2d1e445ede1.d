/root/repo/target/debug/examples/permutation_routing-adaaa2d1e445ede1.d: examples/permutation_routing.rs Cargo.toml

/root/repo/target/debug/examples/libpermutation_routing-adaaa2d1e445ede1.rmeta: examples/permutation_routing.rs Cargo.toml

examples/permutation_routing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
