/root/repo/target/debug/examples/quickstart-76e8c784aa4b86d3.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-76e8c784aa4b86d3: examples/quickstart.rs

examples/quickstart.rs:
