/root/repo/target/debug/examples/quickstart-8028bc6710b0bd7d.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-8028bc6710b0bd7d.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
