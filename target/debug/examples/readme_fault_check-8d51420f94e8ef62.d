/root/repo/target/debug/examples/readme_fault_check-8d51420f94e8ef62.d: examples/readme_fault_check.rs

/root/repo/target/debug/examples/readme_fault_check-8d51420f94e8ef62: examples/readme_fault_check.rs

examples/readme_fault_check.rs:
