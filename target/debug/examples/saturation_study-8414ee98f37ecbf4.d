/root/repo/target/debug/examples/saturation_study-8414ee98f37ecbf4.d: examples/saturation_study.rs

/root/repo/target/debug/examples/saturation_study-8414ee98f37ecbf4: examples/saturation_study.rs

examples/saturation_study.rs:
