/root/repo/target/debug/examples/saturation_study-f94d893c0a25a9d7.d: examples/saturation_study.rs Cargo.toml

/root/repo/target/debug/examples/libsaturation_study-f94d893c0a25a9d7.rmeta: examples/saturation_study.rs Cargo.toml

examples/saturation_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
