/root/repo/target/debug/examples/threaded_ring-3864d8e72249948b.d: examples/threaded_ring.rs

/root/repo/target/debug/examples/threaded_ring-3864d8e72249948b: examples/threaded_ring.rs

examples/threaded_ring.rs:
