/root/repo/target/debug/examples/threaded_ring-38a00c42c8982809.d: examples/threaded_ring.rs Cargo.toml

/root/repo/target/debug/examples/libthreaded_ring-38a00c42c8982809.rmeta: examples/threaded_ring.rs Cargo.toml

examples/threaded_ring.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__clippy::perf__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
