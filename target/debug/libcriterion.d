/root/repo/target/debug/libcriterion.rlib: /root/repo/crates/criterion-lite/src/lib.rs
