/root/repo/target/debug/libproptest.rlib: /root/repo/crates/proptest-lite/src/lib.rs
