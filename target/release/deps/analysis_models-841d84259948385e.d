/root/repo/target/release/deps/analysis_models-841d84259948385e.d: crates/rmb-bench/benches/analysis_models.rs

/root/repo/target/release/deps/analysis_models-841d84259948385e: crates/rmb-bench/benches/analysis_models.rs

crates/rmb-bench/benches/analysis_models.rs:
