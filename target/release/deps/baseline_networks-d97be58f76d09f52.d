/root/repo/target/release/deps/baseline_networks-d97be58f76d09f52.d: crates/rmb-bench/benches/baseline_networks.rs

/root/repo/target/release/deps/baseline_networks-d97be58f76d09f52: crates/rmb-bench/benches/baseline_networks.rs

crates/rmb-bench/benches/baseline_networks.rs:
