/root/repo/target/release/deps/compare-28bd40ba3f90ad45.d: crates/rmb-bench/src/bin/compare.rs

/root/repo/target/release/deps/compare-28bd40ba3f90ad45: crates/rmb-bench/src/bin/compare.rs

crates/rmb-bench/src/bin/compare.rs:
