/root/repo/target/release/deps/compare-2e772cb972e898df.d: crates/rmb-bench/src/bin/compare.rs

/root/repo/target/release/deps/compare-2e772cb972e898df: crates/rmb-bench/src/bin/compare.rs

crates/rmb-bench/src/bin/compare.rs:
