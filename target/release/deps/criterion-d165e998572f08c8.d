/root/repo/target/release/deps/criterion-d165e998572f08c8.d: crates/criterion-lite/src/lib.rs

/root/repo/target/release/deps/libcriterion-d165e998572f08c8.rlib: crates/criterion-lite/src/lib.rs

/root/repo/target/release/deps/libcriterion-d165e998572f08c8.rmeta: crates/criterion-lite/src/lib.rs

crates/criterion-lite/src/lib.rs:
