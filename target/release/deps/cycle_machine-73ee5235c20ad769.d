/root/repo/target/release/deps/cycle_machine-73ee5235c20ad769.d: crates/rmb-bench/benches/cycle_machine.rs

/root/repo/target/release/deps/cycle_machine-73ee5235c20ad769: crates/rmb-bench/benches/cycle_machine.rs

crates/rmb-bench/benches/cycle_machine.rs:
