/root/repo/target/release/deps/experiments-914bd20d4d7d32c9.d: crates/rmb-bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-914bd20d4d7d32c9: crates/rmb-bench/src/bin/experiments.rs

crates/rmb-bench/src/bin/experiments.rs:
