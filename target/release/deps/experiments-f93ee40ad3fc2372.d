/root/repo/target/release/deps/experiments-f93ee40ad3fc2372.d: crates/rmb-bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-f93ee40ad3fc2372: crates/rmb-bench/src/bin/experiments.rs

crates/rmb-bench/src/bin/experiments.rs:
