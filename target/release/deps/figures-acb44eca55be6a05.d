/root/repo/target/release/deps/figures-acb44eca55be6a05.d: crates/rmb-bench/src/bin/figures.rs

/root/repo/target/release/deps/figures-acb44eca55be6a05: crates/rmb-bench/src/bin/figures.rs

crates/rmb-bench/src/bin/figures.rs:
