/root/repo/target/release/deps/figures-f38582fb3ea1471c.d: crates/rmb-bench/src/bin/figures.rs

/root/repo/target/release/deps/figures-f38582fb3ea1471c: crates/rmb-bench/src/bin/figures.rs

crates/rmb-bench/src/bin/figures.rs:
