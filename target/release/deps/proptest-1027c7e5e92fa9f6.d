/root/repo/target/release/deps/proptest-1027c7e5e92fa9f6.d: crates/proptest-lite/src/lib.rs

/root/repo/target/release/deps/libproptest-1027c7e5e92fa9f6.rlib: crates/proptest-lite/src/lib.rs

/root/repo/target/release/deps/libproptest-1027c7e5e92fa9f6.rmeta: crates/proptest-lite/src/lib.rs

crates/proptest-lite/src/lib.rs:
