/root/repo/target/release/deps/rmb-25e287147a3df918.d: src/lib.rs

/root/repo/target/release/deps/librmb-25e287147a3df918.rlib: src/lib.rs

/root/repo/target/release/deps/librmb-25e287147a3df918.rmeta: src/lib.rs

src/lib.rs:
