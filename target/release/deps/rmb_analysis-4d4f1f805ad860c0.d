/root/repo/target/release/deps/rmb_analysis-4d4f1f805ad860c0.d: crates/rmb-analysis/src/lib.rs crates/rmb-analysis/src/cost.rs crates/rmb-analysis/src/dual_ring.rs crates/rmb-analysis/src/grid.rs crates/rmb-analysis/src/lattice.rs crates/rmb-analysis/src/model.rs crates/rmb-analysis/src/offline.rs crates/rmb-analysis/src/rmb_adapter.rs crates/rmb-analysis/src/report.rs crates/rmb-analysis/src/structural.rs

/root/repo/target/release/deps/librmb_analysis-4d4f1f805ad860c0.rlib: crates/rmb-analysis/src/lib.rs crates/rmb-analysis/src/cost.rs crates/rmb-analysis/src/dual_ring.rs crates/rmb-analysis/src/grid.rs crates/rmb-analysis/src/lattice.rs crates/rmb-analysis/src/model.rs crates/rmb-analysis/src/offline.rs crates/rmb-analysis/src/rmb_adapter.rs crates/rmb-analysis/src/report.rs crates/rmb-analysis/src/structural.rs

/root/repo/target/release/deps/librmb_analysis-4d4f1f805ad860c0.rmeta: crates/rmb-analysis/src/lib.rs crates/rmb-analysis/src/cost.rs crates/rmb-analysis/src/dual_ring.rs crates/rmb-analysis/src/grid.rs crates/rmb-analysis/src/lattice.rs crates/rmb-analysis/src/model.rs crates/rmb-analysis/src/offline.rs crates/rmb-analysis/src/rmb_adapter.rs crates/rmb-analysis/src/report.rs crates/rmb-analysis/src/structural.rs

crates/rmb-analysis/src/lib.rs:
crates/rmb-analysis/src/cost.rs:
crates/rmb-analysis/src/dual_ring.rs:
crates/rmb-analysis/src/grid.rs:
crates/rmb-analysis/src/lattice.rs:
crates/rmb-analysis/src/model.rs:
crates/rmb-analysis/src/offline.rs:
crates/rmb-analysis/src/rmb_adapter.rs:
crates/rmb-analysis/src/report.rs:
crates/rmb-analysis/src/structural.rs:
