/root/repo/target/release/deps/rmb_async-30acb3431a0d3f38.d: crates/rmb-async/src/lib.rs crates/rmb-async/src/compactor.rs crates/rmb-async/src/cycle_ring.rs

/root/repo/target/release/deps/librmb_async-30acb3431a0d3f38.rlib: crates/rmb-async/src/lib.rs crates/rmb-async/src/compactor.rs crates/rmb-async/src/cycle_ring.rs

/root/repo/target/release/deps/librmb_async-30acb3431a0d3f38.rmeta: crates/rmb-async/src/lib.rs crates/rmb-async/src/compactor.rs crates/rmb-async/src/cycle_ring.rs

crates/rmb-async/src/lib.rs:
crates/rmb-async/src/compactor.rs:
crates/rmb-async/src/cycle_ring.rs:
