/root/repo/target/release/deps/rmb_baselines-d102a1f8dd4924b3.d: crates/rmb-baselines/src/lib.rs crates/rmb-baselines/src/ehc.rs crates/rmb-baselines/src/fattree.rs crates/rmb-baselines/src/graph.rs crates/rmb-baselines/src/hypercube.rs crates/rmb-baselines/src/mesh.rs crates/rmb-baselines/src/torus.rs crates/rmb-baselines/src/traits.rs crates/rmb-baselines/src/wormhole.rs

/root/repo/target/release/deps/librmb_baselines-d102a1f8dd4924b3.rlib: crates/rmb-baselines/src/lib.rs crates/rmb-baselines/src/ehc.rs crates/rmb-baselines/src/fattree.rs crates/rmb-baselines/src/graph.rs crates/rmb-baselines/src/hypercube.rs crates/rmb-baselines/src/mesh.rs crates/rmb-baselines/src/torus.rs crates/rmb-baselines/src/traits.rs crates/rmb-baselines/src/wormhole.rs

/root/repo/target/release/deps/librmb_baselines-d102a1f8dd4924b3.rmeta: crates/rmb-baselines/src/lib.rs crates/rmb-baselines/src/ehc.rs crates/rmb-baselines/src/fattree.rs crates/rmb-baselines/src/graph.rs crates/rmb-baselines/src/hypercube.rs crates/rmb-baselines/src/mesh.rs crates/rmb-baselines/src/torus.rs crates/rmb-baselines/src/traits.rs crates/rmb-baselines/src/wormhole.rs

crates/rmb-baselines/src/lib.rs:
crates/rmb-baselines/src/ehc.rs:
crates/rmb-baselines/src/fattree.rs:
crates/rmb-baselines/src/graph.rs:
crates/rmb-baselines/src/hypercube.rs:
crates/rmb-baselines/src/mesh.rs:
crates/rmb-baselines/src/torus.rs:
crates/rmb-baselines/src/traits.rs:
crates/rmb-baselines/src/wormhole.rs:
