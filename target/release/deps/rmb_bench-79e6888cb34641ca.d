/root/repo/target/release/deps/rmb_bench-79e6888cb34641ca.d: crates/rmb-bench/src/lib.rs crates/rmb-bench/src/experiments/mod.rs crates/rmb-bench/src/experiments/ablation.rs crates/rmb-bench/src/experiments/compare.rs crates/rmb-bench/src/experiments/competitive.rs crates/rmb-bench/src/experiments/deadlock.rs crates/rmb-bench/src/experiments/extensions.rs crates/rmb-bench/src/experiments/fault_tolerance.rs crates/rmb-bench/src/experiments/lemma1.rs crates/rmb-bench/src/experiments/load.rs crates/rmb-bench/src/experiments/permutation.rs crates/rmb-bench/src/experiments/scaling.rs crates/rmb-bench/src/experiments/theorem1.rs crates/rmb-bench/src/figures.rs crates/rmb-bench/src/rows.rs crates/rmb-bench/src/tables.rs

/root/repo/target/release/deps/librmb_bench-79e6888cb34641ca.rlib: crates/rmb-bench/src/lib.rs crates/rmb-bench/src/experiments/mod.rs crates/rmb-bench/src/experiments/ablation.rs crates/rmb-bench/src/experiments/compare.rs crates/rmb-bench/src/experiments/competitive.rs crates/rmb-bench/src/experiments/deadlock.rs crates/rmb-bench/src/experiments/extensions.rs crates/rmb-bench/src/experiments/fault_tolerance.rs crates/rmb-bench/src/experiments/lemma1.rs crates/rmb-bench/src/experiments/load.rs crates/rmb-bench/src/experiments/permutation.rs crates/rmb-bench/src/experiments/scaling.rs crates/rmb-bench/src/experiments/theorem1.rs crates/rmb-bench/src/figures.rs crates/rmb-bench/src/rows.rs crates/rmb-bench/src/tables.rs

/root/repo/target/release/deps/librmb_bench-79e6888cb34641ca.rmeta: crates/rmb-bench/src/lib.rs crates/rmb-bench/src/experiments/mod.rs crates/rmb-bench/src/experiments/ablation.rs crates/rmb-bench/src/experiments/compare.rs crates/rmb-bench/src/experiments/competitive.rs crates/rmb-bench/src/experiments/deadlock.rs crates/rmb-bench/src/experiments/extensions.rs crates/rmb-bench/src/experiments/fault_tolerance.rs crates/rmb-bench/src/experiments/lemma1.rs crates/rmb-bench/src/experiments/load.rs crates/rmb-bench/src/experiments/permutation.rs crates/rmb-bench/src/experiments/scaling.rs crates/rmb-bench/src/experiments/theorem1.rs crates/rmb-bench/src/figures.rs crates/rmb-bench/src/rows.rs crates/rmb-bench/src/tables.rs

crates/rmb-bench/src/lib.rs:
crates/rmb-bench/src/experiments/mod.rs:
crates/rmb-bench/src/experiments/ablation.rs:
crates/rmb-bench/src/experiments/compare.rs:
crates/rmb-bench/src/experiments/competitive.rs:
crates/rmb-bench/src/experiments/deadlock.rs:
crates/rmb-bench/src/experiments/extensions.rs:
crates/rmb-bench/src/experiments/fault_tolerance.rs:
crates/rmb-bench/src/experiments/lemma1.rs:
crates/rmb-bench/src/experiments/load.rs:
crates/rmb-bench/src/experiments/permutation.rs:
crates/rmb-bench/src/experiments/scaling.rs:
crates/rmb-bench/src/experiments/theorem1.rs:
crates/rmb-bench/src/figures.rs:
crates/rmb-bench/src/rows.rs:
crates/rmb-bench/src/tables.rs:
