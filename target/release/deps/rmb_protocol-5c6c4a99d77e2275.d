/root/repo/target/release/deps/rmb_protocol-5c6c4a99d77e2275.d: crates/rmb-bench/benches/rmb_protocol.rs

/root/repo/target/release/deps/rmb_protocol-5c6c4a99d77e2275: crates/rmb-bench/benches/rmb_protocol.rs

crates/rmb-bench/benches/rmb_protocol.rs:
