/root/repo/target/release/deps/rmb_sim-c340f469b9531d79.d: crates/rmb-sim/src/lib.rs crates/rmb-sim/src/clock.rs crates/rmb-sim/src/par.rs crates/rmb-sim/src/queue.rs crates/rmb-sim/src/rng.rs crates/rmb-sim/src/stats.rs crates/rmb-sim/src/trace.rs

/root/repo/target/release/deps/librmb_sim-c340f469b9531d79.rlib: crates/rmb-sim/src/lib.rs crates/rmb-sim/src/clock.rs crates/rmb-sim/src/par.rs crates/rmb-sim/src/queue.rs crates/rmb-sim/src/rng.rs crates/rmb-sim/src/stats.rs crates/rmb-sim/src/trace.rs

/root/repo/target/release/deps/librmb_sim-c340f469b9531d79.rmeta: crates/rmb-sim/src/lib.rs crates/rmb-sim/src/clock.rs crates/rmb-sim/src/par.rs crates/rmb-sim/src/queue.rs crates/rmb-sim/src/rng.rs crates/rmb-sim/src/stats.rs crates/rmb-sim/src/trace.rs

crates/rmb-sim/src/lib.rs:
crates/rmb-sim/src/clock.rs:
crates/rmb-sim/src/par.rs:
crates/rmb-sim/src/queue.rs:
crates/rmb-sim/src/rng.rs:
crates/rmb-sim/src/stats.rs:
crates/rmb-sim/src/trace.rs:
