/root/repo/target/release/deps/rmb_types-e93ca8a0f9af1dc8.d: crates/rmb-types/src/lib.rs crates/rmb-types/src/config.rs crates/rmb-types/src/error.rs crates/rmb-types/src/fault.rs crates/rmb-types/src/flit.rs crates/rmb-types/src/ids.rs crates/rmb-types/src/json.rs crates/rmb-types/src/message.rs

/root/repo/target/release/deps/librmb_types-e93ca8a0f9af1dc8.rlib: crates/rmb-types/src/lib.rs crates/rmb-types/src/config.rs crates/rmb-types/src/error.rs crates/rmb-types/src/fault.rs crates/rmb-types/src/flit.rs crates/rmb-types/src/ids.rs crates/rmb-types/src/json.rs crates/rmb-types/src/message.rs

/root/repo/target/release/deps/librmb_types-e93ca8a0f9af1dc8.rmeta: crates/rmb-types/src/lib.rs crates/rmb-types/src/config.rs crates/rmb-types/src/error.rs crates/rmb-types/src/fault.rs crates/rmb-types/src/flit.rs crates/rmb-types/src/ids.rs crates/rmb-types/src/json.rs crates/rmb-types/src/message.rs

crates/rmb-types/src/lib.rs:
crates/rmb-types/src/config.rs:
crates/rmb-types/src/error.rs:
crates/rmb-types/src/fault.rs:
crates/rmb-types/src/flit.rs:
crates/rmb-types/src/ids.rs:
crates/rmb-types/src/json.rs:
crates/rmb-types/src/message.rs:
