/root/repo/target/release/deps/rmb_workloads-97fc2b902c55448e.d: crates/rmb-workloads/src/lib.rs crates/rmb-workloads/src/arrival.rs crates/rmb-workloads/src/faults.rs crates/rmb-workloads/src/permutation.rs crates/rmb-workloads/src/sizes.rs crates/rmb-workloads/src/suite.rs

/root/repo/target/release/deps/librmb_workloads-97fc2b902c55448e.rlib: crates/rmb-workloads/src/lib.rs crates/rmb-workloads/src/arrival.rs crates/rmb-workloads/src/faults.rs crates/rmb-workloads/src/permutation.rs crates/rmb-workloads/src/sizes.rs crates/rmb-workloads/src/suite.rs

/root/repo/target/release/deps/librmb_workloads-97fc2b902c55448e.rmeta: crates/rmb-workloads/src/lib.rs crates/rmb-workloads/src/arrival.rs crates/rmb-workloads/src/faults.rs crates/rmb-workloads/src/permutation.rs crates/rmb-workloads/src/sizes.rs crates/rmb-workloads/src/suite.rs

crates/rmb-workloads/src/lib.rs:
crates/rmb-workloads/src/arrival.rs:
crates/rmb-workloads/src/faults.rs:
crates/rmb-workloads/src/permutation.rs:
crates/rmb-workloads/src/sizes.rs:
crates/rmb-workloads/src/suite.rs:
