/root/repo/target/release/deps/tables-7a611f3991028576.d: crates/rmb-bench/src/bin/tables.rs

/root/repo/target/release/deps/tables-7a611f3991028576: crates/rmb-bench/src/bin/tables.rs

crates/rmb-bench/src/bin/tables.rs:
