/root/repo/target/release/deps/tables-c7d6771cda53ad0b.d: crates/rmb-bench/src/bin/tables.rs

/root/repo/target/release/deps/tables-c7d6771cda53ad0b: crates/rmb-bench/src/bin/tables.rs

crates/rmb-bench/src/bin/tables.rs:
