/root/repo/target/release/examples/compaction_trace-f7d9c76db2ad35f5.d: examples/compaction_trace.rs

/root/repo/target/release/examples/compaction_trace-f7d9c76db2ad35f5: examples/compaction_trace.rs

examples/compaction_trace.rs:
