/root/repo/target/release/examples/loadchk-e53e1537484dd3ef.d: crates/rmb-bench/examples/loadchk.rs

/root/repo/target/release/examples/loadchk-e53e1537484dd3ef: crates/rmb-bench/examples/loadchk.rs

crates/rmb-bench/examples/loadchk.rs:
