/root/repo/target/release/examples/multicast_demo-66d08971e58e405f.d: examples/multicast_demo.rs

/root/repo/target/release/examples/multicast_demo-66d08971e58e405f: examples/multicast_demo.rs

examples/multicast_demo.rs:
