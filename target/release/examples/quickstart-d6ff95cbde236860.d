/root/repo/target/release/examples/quickstart-d6ff95cbde236860.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-d6ff95cbde236860: examples/quickstart.rs

examples/quickstart.rs:
