/root/repo/target/release/examples/saturation_study-bf50747d198b5d4a.d: examples/saturation_study.rs

/root/repo/target/release/examples/saturation_study-bf50747d198b5d4a: examples/saturation_study.rs

examples/saturation_study.rs:
