/root/repo/target/release/libcriterion.rlib: /root/repo/crates/criterion-lite/src/lib.rs
