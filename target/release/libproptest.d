/root/repo/target/release/libproptest.rlib: /root/repo/crates/proptest-lite/src/lib.rs
