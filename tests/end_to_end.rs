//! Cross-crate integration tests: workload generation → RMB and baseline
//! simulation → offline analysis, all through the umbrella crate's public
//! API.

use rmb::analysis::{
    competitive_ratio, offline_schedule, ring_lower_bound, DualRmbRing, RmbRing,
};
use rmb::baselines::{FatTree, Hypercube, Mesh2D, Network};
use rmb::core::RmbNetwork;
use rmb::types::{RingSize, RmbConfig};
use rmb::workloads::{PermutationKind, SizeDistribution, WorkloadConfig, WorkloadSuite};

fn rmb_cfg(n: u32, k: u16) -> RmbConfig {
    RmbConfig::builder(n, k)
        .head_timeout(16 * u64::from(n))
        .retry_backoff(u64::from(n))
        .build()
        .expect("valid config")
}

#[test]
fn workload_to_delivery_pipeline() {
    let n = 16u32;
    let suite = WorkloadSuite::new(
        WorkloadConfig::new(n, 7).with_sizes(SizeDistribution::Bimodal {
            short: 2,
            long: 32,
            p_short: 0.5,
        }),
    );
    let msgs = suite.permutation(PermutationKind::Random);
    let mut net = RmbNetwork::builder(rmb_cfg(n, 4)).checked(true).build();
    net.submit_all(msgs.iter().copied()).expect("valid workload");
    let report = net.run_to_quiescence(4_000_000);
    assert_eq!(report.delivered, msgs.len(), "stalled={}", report.stalled);
    // Delivered payload sizes match the submitted specs one-to-one.
    let mut sent: Vec<u32> = msgs.iter().map(|m| m.data_flits).collect();
    let mut got: Vec<u32> = net.delivered_log().iter().map(|d| d.spec.data_flits).collect();
    sent.sort_unstable();
    got.sort_unstable();
    assert_eq!(sent, got);
}

#[test]
fn every_network_routes_the_same_permutation() {
    let n = 16u32;
    let k = 4u16;
    let suite = WorkloadSuite::new(
        WorkloadConfig::new(n, 3).with_sizes(SizeDistribution::Fixed(8)),
    );
    let msgs = suite.permutation(PermutationKind::BitReversal);
    let mut nets: Vec<Box<dyn Network>> = vec![
        Box::new(RmbRing::new(rmb_cfg(n, k))),
        Box::new(DualRmbRing::new(rmb_cfg(n, k))),
        Box::new(Hypercube::new(n)),
        Box::new(FatTree::new(n, k)),
        Box::new(Mesh2D::square(n)),
    ];
    for net in &mut nets {
        let out = net.route_messages(&msgs, 4_000_000);
        assert_eq!(
            out.delivered.len(),
            msgs.len(),
            "{} failed (stalled={})",
            net.label(),
            out.stalled
        );
        // Per-message sanity: each delivery corresponds to a submitted
        // message and finishes after it starts.
        for d in &out.delivered {
            assert!(msgs.iter().any(|m| m.source == d.spec.source
                && m.destination == d.spec.destination));
            assert!(d.delivered_at >= d.circuit_at);
        }
    }
}

#[test]
fn online_offline_analysis_chain() {
    let n = 24u32;
    let k = 6u16;
    let ring = RingSize::new(n).unwrap();
    let suite = WorkloadSuite::new(
        WorkloadConfig::new(n, 11).with_sizes(SizeDistribution::Fixed(12)),
    );
    let msgs = suite.permutation(PermutationKind::Random);

    let mut rmb = RmbRing::new(rmb_cfg(n, k));
    let online = rmb.route_messages(&msgs, 8_000_000);
    assert_eq!(online.delivered.len(), msgs.len());

    let sched = offline_schedule(ring, k, &msgs);
    assert!(sched.is_feasible(ring, k, &msgs));
    assert!(sched.makespan >= ring_lower_bound(ring, k, &msgs));

    let ratio = competitive_ratio(online.makespan(), &sched).expect("nonzero offline");
    assert!(ratio >= 0.9, "online cannot beat offline by much: {ratio}");
    assert!(ratio < 32.0, "competitiveness out of plausible range: {ratio}");
}

#[test]
fn paper_shape_ring_wins_local_hypercube_wins_global() {
    // The §3 qualitative shape on measured runs.
    let n = 16u32;
    let k = 4u16;
    let suite = WorkloadSuite::new(
        WorkloadConfig::new(n, 5).with_sizes(SizeDistribution::Fixed(16)),
    );

    let local = suite.permutation(PermutationKind::Rotation(1));
    let global = suite.permutation(PermutationKind::Opposite);

    let mut ring = RmbRing::new(rmb_cfg(n, k));
    let mut cube = Hypercube::new(n);

    let ring_local = ring.route_messages(&local, 4_000_000);
    let cube_local = cube.route_messages(&local, 4_000_000);
    let ring_global = ring.route_messages(&global, 4_000_000);
    let cube_global = cube.route_messages(&global, 4_000_000);

    assert!(ring_local.makespan() <= cube_local.makespan() + 4);
    assert!(cube_global.makespan() * 2 < ring_global.makespan());
}

#[test]
fn dual_ring_halves_long_haul_traffic() {
    let n = 16u32;
    let k = 4u16;
    let suite = WorkloadSuite::new(
        WorkloadConfig::new(n, 9).with_sizes(SizeDistribution::Fixed(16)),
    );
    let msgs = suite.permutation(PermutationKind::Reversal);
    let mut single = RmbRing::new(rmb_cfg(n, k));
    let mut dual = DualRmbRing::new(rmb_cfg(n, k));
    let s = single.route_messages(&msgs, 4_000_000);
    let d = dual.route_messages(&msgs, 4_000_000);
    assert_eq!(s.delivered.len(), msgs.len());
    assert_eq!(d.delivered.len(), msgs.len());
    assert!(d.makespan() * 2 < s.makespan() + 100);
}

#[test]
fn deterministic_across_runs() {
    let n = 16u32;
    let suite = WorkloadSuite::new(
        WorkloadConfig::new(n, 42).with_sizes(SizeDistribution::Uniform { min: 1, max: 32 }),
    );
    let msgs = suite.bernoulli(0.01, 2_000);
    let run = || {
        let mut net = RmbNetwork::new(rmb_cfg(n, 4));
        net.submit_all(msgs.iter().copied()).expect("valid");
        let r = net.run_to_quiescence(2_000_000);
        (r.ticks, r.delivered, r.compaction_moves, r.refusals)
    };
    assert_eq!(run(), run(), "simulation must be a pure function of input");
}
