//! Integration tests asserting that every paper artifact (table, figure,
//! lemma, theorem, comparison) regenerates through the public harness API
//! with the content the paper describes.

use rmb_bench::experiments::{
    ablation_suite, comparison_table, competitiveness, cross_check_table, deadlock_study,
    lemma1_experiment, load_sweep, permutation_comparison, theorem1_experiment, Metric,
};
use rmb_bench::figures::figure;
use rmb_bench::tables::{table1, table2};

#[test]
fn t1_table1_regenerates_with_paper_rows() {
    let s = table1().to_string();
    for row in [
        "Bus is unused",
        "Port receives from below",
        "Port receives straight",
        "Port receives from below and straight",
        "Port receives from above",
        "Port receives from above and straight",
    ] {
        assert!(s.contains(row), "missing row: {row}");
    }
    assert_eq!(s.matches("Not allowed").count(), 2);
}

#[test]
fn t2_table2_regenerates_with_paper_mnemonics() {
    let s = table2().to_string();
    assert!(s.contains("Own Datapaths have switched"));
    assert!(s.contains("Own Cycle has changed"));
    assert!(s.contains("Internal signal to INC"));
}

#[test]
fn f1_to_f11_figures_regenerate() {
    for n in 1..=11u32 {
        let s = figure(n);
        assert!(s.contains("Figure"), "figure {n}");
    }
    // Spot content checks tying figures to the implementation.
    assert!(figure(1).contains("b3 |"), "fig 1 shows a 4-bus array");
    assert!(figure(4).contains("make"), "fig 4 shows MBB stages");
    assert!(figure(7).contains("100 -> 110 -> 010"), "fig 7 register codes");
    assert!(figure(8).contains("E O"), "fig 8 parity pattern");
    assert!(figure(11).contains("capacity"), "fig 11 capacities");
}

#[test]
fn a1_a3_cost_tables_regenerate() {
    for metric in [Metric::Links, Metric::Crosspoints, Metric::Area] {
        let t = comparison_table(metric, &[64, 1024], &[8]);
        assert_eq!(t.len(), 2 * 6);
    }
    let s = cross_check_table(64, 8).to_string();
    assert!(s.contains("RMB"));
    assert!(s.contains("fat-tree"));
}

#[test]
fn l1_lemma1_holds() {
    let r = lemma1_experiment(8, 1);
    assert!(r.bound_held);
}

#[test]
fn th1_theorem1_full_admission() {
    let r = theorem1_experiment(10, 3, 25, 2);
    assert!(r.feasible_trials > 5);
    assert_eq!(r.admission_rate(), 1.0);
}

#[test]
fn e1_competitiveness_is_measurable() {
    let rows = competitiveness(16, 4, 8, 13);
    assert!(!rows.is_empty());
    assert!(rows.iter().all(|r| r.online > 0));
    assert!(rows.iter().all(|r| r.offline >= r.lower_bound));
}

#[test]
fn e2_permutation_comparison_has_paper_shape() {
    let rows = permutation_comparison(16, 4, 8, 17);
    let get = |perm: &str, net: &str| {
        rows.iter()
            .find(|r| r.permutation == perm && r.network.starts_with(net))
            .unwrap()
            .makespan
    };
    // Who wins where, per §3's qualitative claims.
    assert!(get("rotation(1)", "rmb") <= get("rotation(1)", "fat-tree"));
    assert!(get("opposite", "hypercube") < get("opposite", "rmb"));
    assert!(get("reversal", "dual-rmb") < get("reversal", "rmb"));
}

#[test]
fn ablations_rank_as_designed() {
    let rows = ablation_suite(16, 4, 8, 19);
    let get = |name: &str| rows.iter().find(|r| r.variant.starts_with(name)).unwrap();
    assert!(get("paper").makespan < get("no compaction").makespan);
    assert!(!get("paper").stalled);
}

#[test]
fn load_sweep_saturates() {
    let pts = load_sweep(16, 2, &[0.001, 0.05], 2_000, 8, 23);
    assert!(pts[1].utilization > pts[0].utilization);
    assert!(pts[1].mean_latency > pts[0].mean_latency);
}

#[test]
fn deadlock_finding_reproduces() {
    let r = deadlock_study(12, 3, 6, 0);
    assert!(r.verbatim_stalled, "saturated simultaneous injection gridlocks");
    assert!(r.timeout_completed, "head timeout restores progress");
}
