//! A bullet-by-bullet conformance walk through the paper's protocol
//! description (§2.2–2.4): each test quotes the claim it checks and
//! drives the public API to observe exactly that behaviour.

use rmb::core::{derive_inc, BusState, RmbNetwork, StreamState};
use rmb::sim::trace::TraceKind;
use rmb::types::{MessageSpec, NodeId, RmbConfig};

fn net(n: u32, k: u16) -> RmbNetwork {
    RmbNetwork::builder(RmbConfig::new(n, k).unwrap())
        .checked(true)
        .build()
}

fn recording_net(n: u32, k: u16) -> RmbNetwork {
    RmbNetwork::builder(RmbConfig::new(n, k).unwrap())
        .checked(true)
        .recording(true)
        .build()
}

/// §2.2: "New channels of communication are introduced only at top bus,
/// bus segment k - 1 at that node."
#[test]
fn s22_new_channels_enter_at_the_top_bus_only() {
    let mut net = recording_net(10, 4);
    for s in 0..5 {
        net.submit(MessageSpec::new(NodeId::new(s), NodeId::new(s + 5), 4).at(u64::from(s) * 7))
            .unwrap();
    }
    net.run_to_quiescence(100_000);
    let events = net.take_events();
    let injections: Vec<_> = events
        .iter()
        .filter(|e| e.kind == TraceKind::Inject)
        .collect();
    assert_eq!(injections.len(), 5);
    assert!(
        injections.iter().all(|e| e.bus == Some(3)),
        "every insertion at segment k-1"
    );
}

/// §2.2: "A request can only be initiated if the top bus segment at that
/// INC is not being used to serve another request."
#[test]
fn s22_busy_top_segment_blocks_initiation() {
    let mut net = net(8, 2);
    // A long circuit from node 0 holds the top of hop 0 while it
    // establishes; a second request at node 0 must wait for compaction
    // to release it.
    net.submit(MessageSpec::new(NodeId::new(0), NodeId::new(5), 200))
        .unwrap();
    net.submit(MessageSpec::new(NodeId::new(0), NodeId::new(3), 2))
        .unwrap();
    net.tick(); // first request claims the top segment
    assert_eq!(net.active_virtual_buses(), 1);
    assert_eq!(net.pending_requests(), 1, "second HF buffered at the node");
    // Only the single-send limit is in play here too; widen it to show
    // the *segment* is the blocker.
    let report = net.run_to_quiescence(100_000);
    assert_eq!(report.delivered, 2);
}

/// §2.2: "Data flits are only transmitted after an acknowledgement is
/// received for the HF from the destination. This is in order to avoid
/// buffering of DFs at intermediate nodes."
#[test]
fn s22_no_data_before_hack() {
    let mut net = net(12, 2);
    net.submit(MessageSpec::new(NodeId::new(0), NodeId::new(9), 8))
        .unwrap();
    let span = 9u64;
    // Until the Hack returns (2 * span ticks), no data flit may move.
    for _ in 0..2 * span {
        net.tick();
        if let Some(bus) = net.virtual_buses().next() {
            if let Some(BusState::Streaming(StreamState { next_seq, .. })) =
                net.bus_state(bus.id)
            {
                panic!("data flit {next_seq} sent before Hack returned")
            }
        }
    }
    net.tick();
    let bus = net.virtual_buses().next().expect("circuit live");
    let state = net.bus_state(bus.id).expect("circuit live");
    assert!(
        matches!(state, BusState::Streaming(_)),
        "streaming starts exactly after the Hack: {state}"
    );
}

/// §2.2: "A request which is not accepted will have to be tried again at
/// a later time" — and the Nack "releases the virtual bus associated
/// with that request."
#[test]
fn s22_nack_releases_and_retries() {
    let mut net = recording_net(10, 3);
    net.submit(MessageSpec::new(NodeId::new(5), NodeId::new(9), 400))
        .unwrap();
    net.submit(MessageSpec::new(NodeId::new(0), NodeId::new(9), 2).at(3))
        .unwrap();
    net.run(60);
    let events = net.take_events();
    assert!(
        events.iter().any(|e| e.kind == TraceKind::Refuse),
        "second request refused while the first receives"
    );
    // The refused circuit's segments are fully released.
    let live: usize = net
        .virtual_buses()
        .map(|b| b.active_hops(net.bus_state(b.id).expect("live bus")))
        .sum();
    assert_eq!(net.busy_segments(), live);
    let report = net.run_to_quiescence(1_000_000);
    assert_eq!(report.delivered, 2, "retry eventually succeeds");
}

/// §2.2: "A 'Fack' signal is used by all intermediate INCs to free a port
/// being used by that virtual bus connection."
#[test]
fn s22_fack_frees_ports_progressively() {
    let mut net = net(10, 2);
    net.submit(MessageSpec::new(NodeId::new(0), NodeId::new(6), 2))
        .unwrap();
    // Run until teardown begins.
    let mut saw_partial_teardown = false;
    for _ in 0..200 {
        net.tick();
        if let Some(bus) = net.virtual_buses().next() {
            let state = net.bus_state(bus.id).expect("live bus");
            if matches!(state, BusState::TearingDown { .. }) && bus.active_hops(state) < 6 {
                saw_partial_teardown = true;
                // Freed tail hops are genuinely free; the prefix is busy.
                assert_eq!(net.busy_segments(), bus.active_hops(state));
            }
        }
    }
    assert!(saw_partial_teardown, "teardown frees hop by hop");
    assert_eq!(net.busy_segments(), 0);
}

/// §2.2: "The motion of virtual-buses for the purpose of compaction is
/// only downwards."
#[test]
fn s22_compaction_moves_only_down() {
    let mut net = recording_net(12, 4);
    net.submit(MessageSpec::new(NodeId::new(0), NodeId::new(8), 60))
        .unwrap();
    net.submit(MessageSpec::new(NodeId::new(2), NodeId::new(10), 60).at(4))
        .unwrap();
    net.run_to_quiescence(100_000);
    let events = net.take_events();
    let moves: Vec<_> = events
        .iter()
        .filter(|e| e.kind == TraceKind::CompactMove)
        .collect();
    assert!(!moves.is_empty());
    for m in moves {
        // Detail string is "hop J moved bX -> bY" with Y = X - 1.
        let detail = &m.detail;
        let parts: Vec<&str> = detail.split(" -> ").collect();
        let from: u16 = parts[0].rsplit('b').next().unwrap().parse().unwrap();
        let to: u16 = parts[1].trim_start_matches('b').parse().unwrap();
        assert_eq!(to + 1, from, "{detail}");
    }
}

/// §2.3: "A node with a message to be sent, attempts to insert the header
/// flit HF at the top output port of its INC. If the port is busy, then
/// the node buffers the HF and waits."
#[test]
fn s23_buffered_header_waits_and_then_inserts() {
    let mut net = net(6, 1); // k = 1: the single bus is also the top bus
    net.submit(MessageSpec::new(NodeId::new(1), NodeId::new(4), 30))
        .unwrap();
    net.submit(MessageSpec::new(NodeId::new(2), NodeId::new(5), 2).at(1))
        .unwrap();
    net.run(5);
    assert_eq!(net.pending_requests(), 1, "second HF buffered");
    let report = net.run_to_quiescence(100_000);
    assert_eq!(report.delivered, 2);
}

/// §2.3: the make-before-break guarantee — "the communication on a
/// virtual bus progresses independently of the process of compaction."
/// Delivery times must not change when compaction is disabled for a
/// single unconstrained circuit.
#[test]
fn s23_compaction_does_not_disturb_the_stream() {
    let run = |compaction: bool| {
        let cfg = RmbConfig::builder(12, 4)
            .compaction(compaction)
            .build()
            .unwrap();
        let mut net = RmbNetwork::builder(cfg).checked(true).build();
        net.submit(MessageSpec::new(NodeId::new(1), NodeId::new(9), 24))
            .unwrap();
        net.run_to_quiescence(10_000);
        let d = net.delivered_log()[0];
        (d.circuit_at, d.delivered_at)
    };
    assert_eq!(run(true), run(false));
}

/// §2.4 / Fig. 6: each INC output port receives only from inputs within
/// one index — observed on live register projections throughout a run.
#[test]
fn s24_live_registers_stay_within_switching_range() {
    let mut net = net(10, 4);
    for s in 0..5 {
        net.submit(MessageSpec::new(NodeId::new(s), NodeId::new(s + 5), 20).at(u64::from(s) * 2))
            .unwrap();
    }
    for _ in 0..120 {
        net.tick();
        for node in net.ring().nodes() {
            let view = derive_inc(&net, node);
            for (l, status) in view.outputs.iter().enumerate() {
                assert!(status.is_allowed(), "{node} out{l}: {status}");
                if let Some(dir) = status.sole_source() {
                    let inp = l as i32 + dir.offset();
                    assert!((0..4).contains(&inp), "{node} out{l} from in{inp}");
                }
            }
        }
    }
}

/// §4: "an RMB with k buses should not be considered equivalent of a k
/// bus system. An RMB with k buses can support many more than k virtual
/// buses simultaneously."
#[test]
fn s4_more_virtual_buses_than_physical_buses() {
    let n = 24u32;
    let mut net = net(n, 2); // k = 2
    // Twelve short disjoint circuits: 12 virtual buses on 2 physical
    // buses' worth of segments.
    for i in 0..12 {
        net.submit(MessageSpec::new(
            NodeId::new(2 * i),
            NodeId::new(2 * i + 1),
            200,
        ))
        .unwrap();
    }
    net.run(30);
    assert!(
        net.active_virtual_buses() >= 10,
        "only {} live",
        net.active_virtual_buses()
    );
    let report = net.run_to_quiescence(100_000);
    assert_eq!(report.delivered, 12);
    assert!(report.peak_virtual_buses > 2, "more virtual buses than k");
}

/// Fig. 2's definition: a virtual bus is the *chain of segments* a
/// circuit occupies, which may sit at different physical heights per hop.
#[test]
fn fig2_virtual_bus_heights_vary_along_the_path() {
    let mut net = net(12, 4);
    net.submit(MessageSpec::new(NodeId::new(0), NodeId::new(9), 300))
        .unwrap();
    let mut saw_mixed_heights = false;
    for _ in 0..30 {
        net.tick();
        if let Some(bus) = net.virtual_buses().next() {
            let hs: Vec<u16> = bus.heights.iter().map(|h| h.index()).collect();
            if hs.windows(2).any(|w| w[0] != w[1]) {
                saw_mixed_heights = true;
            }
        }
    }
    assert!(saw_mixed_heights, "compaction staggers heights mid-flight");
}
