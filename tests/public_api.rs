//! Public-API hygiene tests: umbrella re-exports, thread-safety markers,
//! JSON round-trips of configuration and results.

use rmb::core::{BusState, RmbNetwork, RunReport, VirtualBus};
use rmb::sim::{EventQueue, SimRng, Tick};
use rmb::types::json::{FromJson, ToJson};
use rmb::types::{
    Ack, AckMode, DeliveredMessage, Flit, MessageSpec, NodeId, RequestId, RmbConfig,
};

#[test]
fn umbrella_reexports_cover_all_crates() {
    // One symbol per crate proves the module wiring.
    let _ = rmb::types::NodeId::new(0);
    let _ = rmb::sim::Tick::ZERO;
    let _ = rmb::core::PortStatus::UNUSED;
    let _ = rmb::asynchronous::ThreadedCycleRing::new(2);
    let _ = rmb::baselines::Hypercube::new(4);
    let _ = rmb::analysis::cost::cost(rmb::analysis::Architecture::Rmb, 8, 2);
    let _ = rmb::workloads::PermutationKind::Random;
    let _ = rmb::serve::AdmissionMode::Aggregate { depth: 1 };
    let _ = rmb::scenario::parse_scenario("").unwrap_err();
}

#[test]
fn key_types_are_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<RmbConfig>();
    assert_send_sync::<MessageSpec>();
    assert_send_sync::<DeliveredMessage>();
    assert_send_sync::<Flit>();
    assert_send_sync::<Ack>();
    assert_send_sync::<RmbNetwork>();
    assert_send_sync::<RunReport>();
    assert_send_sync::<VirtualBus>();
    assert_send_sync::<BusState>();
    assert_send_sync::<Tick>();
    assert_send_sync::<SimRng>();
    assert_send_sync::<EventQueue<u32>>();
}

#[test]
fn config_json_roundtrip() {
    let cfg = RmbConfig::builder(32, 8)
        .compaction(true)
        .early_compaction(false)
        .head_timeout(100)
        .ack_mode(AckMode::Windowed { window: 6 })
        .retry_backoff(9)
        .build()
        .unwrap();
    let json = cfg.to_json();
    let back = RmbConfig::from_json(&json).unwrap();
    assert_eq!(cfg, back);
}

#[test]
fn message_and_result_json_roundtrip() {
    let spec = MessageSpec::new(NodeId::new(1), NodeId::new(5), 32).at(7);
    let json = spec.to_json();
    assert_eq!(MessageSpec::from_json(&json).unwrap(), spec);

    let d = DeliveredMessage {
        request: RequestId::new(3),
        spec,
        requested_at: 7,
        circuit_at: 20,
        delivered_at: 60,
        refusals: 1,
    };
    let json = d.to_json();
    assert_eq!(DeliveredMessage::from_json(&json).unwrap(), d);
}

#[test]
fn network_is_usable_behind_a_thread() {
    // A whole simulation can be shipped to a worker thread (Send).
    let handle = std::thread::spawn(|| {
        let mut net = RmbNetwork::new(RmbConfig::new(8, 2).unwrap());
        net.submit(MessageSpec::new(NodeId::new(0), NodeId::new(4), 8))
            .unwrap();
        net.run_to_quiescence(100_000).delivered
    });
    assert_eq!(handle.join().unwrap(), 1);
}

#[test]
fn errors_are_reportable() {
    let mut net = RmbNetwork::new(RmbConfig::new(4, 1).unwrap());
    let err = net
        .submit(MessageSpec::new(NodeId::new(1), NodeId::new(1), 0))
        .unwrap_err();
    let boxed: Box<dyn std::error::Error> = Box::new(err);
    assert!(boxed.to_string().contains("not routable"));
}
